//! `loadgen` — latency-vs-QPS curves for the UOTS query service.
//!
//! Starts an in-process [`QueryService`] over a generated dataset, then
//! drives it over real HTTP (loopback TCP, one connection per request —
//! the service's wire protocol) in two modes:
//!
//! * **closed loop** — N workers, each firing its next request the
//!   moment the previous answer lands. Sweeps worker counts; reports
//!   the achieved throughput and the per-request latency distribution.
//! * **open loop** — a dispatcher fires requests on a fixed schedule at
//!   a target arrival rate, regardless of completions (the
//!   coordinated-omission-free measurement). Sweeps target QPS; latency
//!   includes any queueing the service imposes.
//!
//! Each sweep runs twice: with the adaptive planner (service default)
//! and with `--force-algorithm expansion` pinned, so the planner's
//! dispatch overhead and its routing wins are a measured number, not a
//! belief. Rows land in `BENCH_serve.json` (same schema as every other
//! experiment: `experiment` is `serve_closed` / `serve_open`, the swept
//! `parameter` is `workers` / `qps`, `algorithm` is `planner` /
//! `forced-expansion`).
//!
//! ```text
//! loadgen [--scale tiny|bench|brn|nrn] [--trips N] [--queries N]
//!         [--duration-ms MS] [--workers 1,4,8] [--qps 50,200]
//!         [--out DIR] [--seed S]
//! ```

use std::io::{Read, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use uots::obs::{MetricsRegistry, ObsState};
use uots::serve::{QueryService, ServiceConfig};
use uots::EpochManager;
use uots_bench::{make_queries, render_table, LatencyStats, Row, Scale};
use uots_core::planner::AlgorithmKind;
use uots_core::UotsQuery;
use uots_datagen::Dataset;

struct Args {
    scale: Scale,
    trips: usize,
    queries: usize,
    duration: Duration,
    workers: Vec<usize>,
    qps: Vec<f64>,
    out: String,
    seed: u64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        scale: Scale::Bench,
        trips: 0,
        queries: 64,
        duration: Duration::from_millis(1500),
        workers: vec![1, 4, 8],
        qps: vec![50.0, 200.0],
        out: ".".to_string(),
        seed: 42,
    };
    let mut i = 0;
    let die = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(2);
    };
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).cloned();
        let take = |name: &str| -> String {
            value
                .clone()
                .unwrap_or_else(|| die(format!("--{name} needs a value")))
        };
        match flag {
            "--scale" => {
                let v = take("scale");
                args.scale =
                    Scale::parse(&v).unwrap_or_else(|| die(format!("unknown scale `{v}`")));
            }
            "--trips" => {
                args.trips = take("trips")
                    .parse()
                    .unwrap_or_else(|_| die("--trips must be an integer".into()));
            }
            "--queries" => {
                args.queries = take("queries")
                    .parse()
                    .unwrap_or_else(|_| die("--queries must be an integer".into()));
            }
            "--duration-ms" => {
                let ms: u64 = take("duration-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--duration-ms must be an integer".into()));
                args.duration = Duration::from_millis(ms);
            }
            "--workers" => {
                args.workers = take("workers")
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .unwrap_or_else(|_| die("--workers must be integers".into()))
                    })
                    .collect();
            }
            "--qps" => {
                args.qps = take("qps")
                    .split(',')
                    .map(|q| {
                        q.trim()
                            .parse()
                            .unwrap_or_else(|_| die("--qps must be numbers".into()))
                    })
                    .collect();
            }
            "--out" => args.out = take("out"),
            "--seed" => {
                args.seed = take("seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed must be an integer".into()));
            }
            other => die(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if args.trips == 0 {
        args.trips = args.scale.default_trips();
    }
    args
}

/// Serialized request bodies for `/topk`, round-robined by the drivers.
fn request_pool(ds: &Dataset, n: usize, seed: u64) -> Vec<String> {
    // A mixed pool so the planner actually routes: small and large m,
    // few and many keywords, spatial- and text-leaning λ.
    let mut bodies = Vec::with_capacity(n);
    let shapes = [
        (2usize, 2usize, 0.5f64),
        (1, 3, 0.5),
        (10, 1, 0.5),
        (3, 2, 0.1),
    ];
    for (si, (m, kws, lambda)) in shapes.iter().enumerate() {
        let per = n.div_ceil(shapes.len());
        for q in make_queries(ds, per, *m, *kws, *lambda, 3, seed + si as u64) {
            bodies.push(topk_body(&q, *lambda));
        }
    }
    bodies.truncate(n.max(1));
    bodies
}

fn topk_body(q: &UotsQuery, lambda: f64) -> String {
    let locs: Vec<String> = q.locations().iter().map(|l| l.0.to_string()).collect();
    let kws: Vec<String> = q.keywords().ids().iter().map(|k| k.0.to_string()).collect();
    format!(
        r#"{{"locations":[{}],"keywords":[{}],"lambda":{lambda},"k":{}}}"#,
        locs.join(","),
        kws.join(","),
        q.options().k
    )
}

/// One blocking request/response cycle; returns the HTTP status.
fn fire(addr: SocketAddr, body: &str) -> u16 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    if write!(
        stream,
        "POST /topk HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .is_err()
    {
        return 0;
    }
    let mut raw = String::new();
    if stream.read_to_string(&mut raw).is_err() {
        return 0;
    }
    raw.split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0)
}

struct Outcome {
    stats: LatencyStats,
    completed: usize,
    errors: usize,
    elapsed: Duration,
}

fn row_from(
    experiment: &str,
    dataset: &str,
    algorithm: &str,
    parameter: &str,
    value: f64,
    o: &Outcome,
) -> Row {
    let mut row = Row {
        experiment: experiment.to_string(),
        dataset: dataset.to_string(),
        algorithm: algorithm.to_string(),
        parameter: parameter.to_string(),
        value,
        queries: o.completed,
        // For serving rows, `runtime_ms` reports the *achieved
        // throughput-normalized* mean service time; visited/candidate
        // counters are engine-side and not visible per HTTP request.
        runtime_ms: 0.0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        p99_ms: 0.0,
        max_ms: 0.0,
        visited: 0.0,
        candidates: 0.0,
        candidate_ratio: 0.0,
        pruning_ratio: 0.0,
        bound_gap: 0.0,
        recall: if o.errors == 0 { 1.0 } else { 0.0 },
    };
    o.stats.fill(&mut row);
    row
}

/// Closed loop: `workers` threads, back-to-back requests for `duration`.
fn closed_loop(addr: SocketAddr, pool: &[String], workers: usize, duration: Duration) -> Outcome {
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicUsize::new(0));
    let stats = Arc::new(Mutex::new(LatencyStats::default()));
    let started = Instant::now();
    let mut handles = Vec::new();
    let completed = Arc::new(AtomicUsize::new(0));
    for w in 0..workers {
        let stop = Arc::clone(&stop);
        let errors = Arc::clone(&errors);
        let stats = Arc::clone(&stats);
        let completed = Arc::clone(&completed);
        let pool: Vec<String> = pool.to_vec();
        handles.push(std::thread::spawn(move || {
            let mut i = w;
            while !stop.load(Ordering::Relaxed) {
                let body = &pool[i % pool.len()];
                i += workers;
                let t0 = Instant::now();
                let code = fire(addr, body);
                let dt = t0.elapsed();
                if code == 200 {
                    stats.lock().unwrap().record(dt);
                    completed.fetch_add(1, Ordering::Relaxed);
                } else {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let out = stats.lock().unwrap().clone();
    Outcome {
        stats: out,
        completed: completed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

/// Open loop: fire at `qps` on a fixed schedule for `duration`, one
/// thread per in-flight request (arrivals never wait for completions).
fn open_loop(addr: SocketAddr, pool: &[String], qps: f64, duration: Duration) -> Outcome {
    let errors = Arc::new(AtomicUsize::new(0));
    let stats = Arc::new(Mutex::new(LatencyStats::default()));
    let completed = Arc::new(AtomicUsize::new(0));
    let interval = Duration::from_secs_f64(1.0 / qps.max(1.0));
    let started = Instant::now();
    let mut handles = Vec::new();
    let mut i = 0usize;
    while started.elapsed() < duration {
        let due = interval * u32::try_from(i).unwrap_or(u32::MAX);
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let body = pool[i % pool.len()].clone();
        let errors = Arc::clone(&errors);
        let stats = Arc::clone(&stats);
        let completed = Arc::clone(&completed);
        handles.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let code = fire(addr, &body);
            let dt = t0.elapsed();
            if code == 200 {
                stats.lock().unwrap().record(dt);
                completed.fetch_add(1, Ordering::Relaxed);
            } else {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }));
        i += 1;
    }
    for h in handles {
        let _ = h.join();
    }
    let out = stats.lock().unwrap().clone();
    Outcome {
        stats: out,
        completed: completed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

fn start_service(ds: &Dataset, force: Option<AlgorithmKind>) -> QueryService {
    let registry = MetricsRegistry::new();
    let manager = EpochManager::with_metrics(
        Arc::new(ds.network.clone()),
        ds.store.clone(),
        ds.vocab.len(),
        &registry,
    );
    let obs = ObsState::new().with_registry(registry.clone());
    let cfg = ServiceConfig {
        force,
        ..ServiceConfig::default()
    };
    QueryService::start("127.0.0.1:0", Arc::new(manager), registry, obs, cfg)
        .expect("bind loopback service")
}

fn main() {
    let args = parse_args();
    let preset = format!("{:?}", args.scale).to_lowercase();
    eprintln!(
        "loadgen: building {preset} dataset ({} trips, seed {})",
        args.trips, args.seed
    );
    let ds = args.scale.build(args.trips);
    let pool = request_pool(&ds, args.queries, args.seed);

    let mut rows: Vec<Row> = Vec::new();
    for (algorithm, force) in [
        ("planner", None),
        ("forced-expansion", Some(AlgorithmKind::Expansion)),
    ] {
        let mut service = start_service(&ds, force);
        let addr = service.local_addr();
        eprintln!("loadgen: {algorithm} service on {addr}");
        for &workers in &args.workers {
            let o = closed_loop(addr, &pool, workers, args.duration);
            let achieved = o.completed as f64 / o.elapsed.as_secs_f64();
            eprintln!(
                "  closed workers={workers}: {achieved:.0} req/s, {} ok, {} errors",
                o.completed, o.errors
            );
            let mut row = row_from(
                "serve_closed",
                &ds.name,
                algorithm,
                "workers",
                workers as f64,
                &o,
            );
            // For serving rows the mean column carries achieved QPS.
            row.runtime_ms = achieved;
            rows.push(row);
        }
        for &qps in &args.qps {
            let o = open_loop(addr, &pool, qps, args.duration);
            let achieved = o.completed as f64 / o.elapsed.as_secs_f64();
            eprintln!(
                "  open qps={qps}: achieved {achieved:.0} req/s, {} ok, {} errors",
                o.completed, o.errors
            );
            let mut row = row_from("serve_open", &ds.name, algorithm, "qps", qps, &o);
            row.runtime_ms = achieved;
            rows.push(row);
        }
        service.shutdown();
    }

    println!(
        "{}",
        render_table(
            "serve: latency vs load (runtime_ms column = achieved req/s)",
            &rows
        )
    );
    let dir = std::path::Path::new(&args.out);
    match uots_bench::write_bench_json(dir, "serve", &preset, args.seed, &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: writing BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }
    let any_completed = rows.iter().any(|r| r.queries > 0);
    if !any_completed {
        eprintln!("error: no request completed in any sweep point");
        std::process::exit(1);
    }
}
