//! Paper-style experiment harness.
//!
//! Regenerates every table and figure of the reconstructed UOTS evaluation
//! (see `DESIGN.md` §5 for the inventory and `EXPERIMENTS.md` for recorded
//! results):
//!
//! ```text
//! experiments [--scale tiny|bench|brn|nrn] [--trips N] [--queries N]
//!             [--only t1,t2,f1,...] [--json PATH]
//! ```
//!
//! * `t1` dataset statistics            * `f4` effect of k
//! * `t2` pruning effectiveness         * `f5` effect of #keywords
//! * `t2p` hot-path data layouts: legacy vs CSR/bitset, bit-identical top-k
//! * `f1` effect of #query locations    * `f6` effect of trajectory length
//! * `f2` effect of λ                   * `f7` effect of thread count
//! * `f3` effect of |P|                 * `f8` scheduler ablation
//! *                                    * `f9` effect of vocabulary size
//! *                                    * `f10` temporal channel cost
//! * `j1` trajectory similarity self-join (extension)
//! * `d1` anytime degradation curve: quality vs budget (extension)
//! * `d2` shared distance cache: speedup and hit rate vs uncached (extension)
//! * `d3` live ingest: epoch-swap throughput and query latency under churn
//!   vs the frozen baseline (extension)
//! * `d4` durability: ingest throughput vs WAL fsync policy, and recovery
//!   time vs WAL length, with and without checkpoints (extension)

use std::collections::HashSet;
use std::sync::Arc;
use uots_bench::{algorithms, make_queries, measure, render_table, time, LatencyStats, Row, Scale};
use uots_core::algorithms::{Algorithm, Expansion};
use uots_core::{
    parallel, Database, DistanceCache, EpochManager, ExecutionBudget, QueryOptions, Scheduler,
    SearchContext, UotsQuery, Weights, DEFAULT_CACHE_CAPACITY,
};
use uots_datagen::{Dataset, DatasetConfig};

struct Args {
    scale: Scale,
    trips: usize,
    queries: usize,
    only: Option<HashSet<String>>,
    json: Option<String>,
    /// Directory for the per-experiment `BENCH_<id>.json` row files
    /// (`None` = suppressed via `--no-bench-json`).
    bench_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut scale = Scale::Bench;
    let mut trips = None;
    let mut queries = 16usize;
    let mut only = None;
    let mut json = None;
    let mut bench_dir = Some(".".to_string());
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(&argv[i]).unwrap_or_else(|| {
                    eprintln!("unknown scale `{}`", argv[i]);
                    std::process::exit(2);
                });
            }
            "--trips" => {
                i += 1;
                trips = Some(argv[i].parse().expect("--trips N"));
            }
            "--queries" => {
                i += 1;
                queries = argv[i].parse().expect("--queries N");
            }
            "--only" => {
                i += 1;
                only = Some(argv[i].split(',').map(|s| s.trim().to_string()).collect());
            }
            "--json" => {
                i += 1;
                json = Some(argv[i].clone());
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = Some(argv[i].clone());
            }
            "--no-bench-json" => {
                bench_dir = None;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale tiny|bench|brn|nrn] [--trips N] \
                     [--queries N] [--only t1,f2,...] [--json PATH] \
                     [--bench-dir DIR] [--no-bench-json]\n\
                     every experiment also writes its rows as BENCH_<id>.json \
                     (preset, seed, percentiles, visited counts) into \
                     --bench-dir (default .); --no-bench-json suppresses them"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let trips = trips.unwrap_or_else(|| scale.default_trips());
    Args {
        scale,
        trips,
        queries,
        only,
        json,
        bench_dir,
    }
}

fn wants(args: &Args, id: &str) -> bool {
    args.only.as_ref().is_none_or(|s| s.contains(id))
}

fn open<'a>(ds: &'a Dataset) -> Database<'a> {
    Database::new(&ds.network, &ds.store, &ds.vertex_index).with_keyword_index(&ds.keyword_index)
}

/// Rebuilds a dataset identical to `cfg` but with `n` trips. Because the
/// trip generator draws trips sequentially from one RNG stream, the smaller
/// dataset is a prefix of the larger one — cardinality sweeps compare
/// like-for-like data.
fn with_trips(cfg: &DatasetConfig, n: usize) -> Dataset {
    let mut cfg = cfg.clone();
    cfg.trips.num_trips = n;
    cfg.name = format!("{} @|P|={n}", cfg.name);
    Dataset::build(&cfg).expect("sweep dataset builds")
}

fn main() {
    let args = parse_args();
    let mut all_rows: Vec<Row> = Vec::new();
    println!(
        "# UOTS experiments — scale {:?}, |P| = {}, {} queries/point",
        args.scale, args.trips, args.queries
    );

    let base_cfg = args.scale.config(args.trips);
    let ds = args.scale.build(args.trips);
    let db = open(&ds);

    // ---------------- T1: dataset statistics ----------------
    if wants(&args, "t1") {
        println!("\n## T1 — dataset statistics ({})", ds.name);
        println!("{}", ds.stats());
        println!(
            "network             : {} vertices, {} edges, total {:.0} km",
            ds.network.num_nodes(),
            ds.network.num_edges(),
            ds.network.total_length()
        );
    }

    // ---------------- T2: pruning effectiveness ----------------
    if wants(&args, "t2") {
        let queries = make_queries(&ds, args.queries, 4, 3, 0.5, 1, 0x12);
        let with_oracle = matches!(args.scale, Scale::Tiny | Scale::Bench);
        let rows: Vec<Row> = algorithms(with_oracle)
            .iter()
            .map(|(n, a)| measure("t2", &ds, &db, n, a.as_ref(), &queries, "-", 0.0))
            .collect();
        print!(
            "{}",
            render_table("T2 — pruning effectiveness (defaults)", &rows)
        );
        all_rows.extend(rows);
    }

    // ------- T2′: hot-path data layouts — legacy vs CSR/bitset (extension) -------
    if wants(&args, "t2p") {
        use uots_core::LayoutTables;
        let queries = make_queries(&ds, args.queries, 4, 3, 0.5, 1, 0x12);
        let (layout, build_wall) =
            time(|| LayoutTables::build(&ds.network, &ds.store, ds.vocab.len()));
        let db_layout = db.with_layout(&layout);
        let algo = Expansion::default();

        // One uncached pass over the T2 defaults workload; returns the
        // exact (id, similarity-bits) answers for the in-run identity
        // assert plus the numbers the rows need.
        let run_pass = |db: &Database| {
            let mut latencies = LatencyStats::new();
            let mut results: Vec<Vec<(u64, u64)>> = Vec::new();
            let mut visited = 0usize;
            let mut candidates = 0usize;
            let start = std::time::Instant::now();
            for q in &queries {
                let q_start = std::time::Instant::now();
                let r = algo.run(db, q).expect("t2p run");
                latencies.record(q_start.elapsed());
                results.push(
                    r.matches
                        .iter()
                        .map(|m| (m.id.0 as u64, m.similarity.to_bits()))
                        .collect(),
                );
                visited += r.metrics.visited_trajectories;
                candidates += r.metrics.candidates;
            }
            (results, latencies, visited, candidates, start.elapsed())
        };

        let legacy = run_pass(&db);
        let layout_pass = run_pass(&db_layout);
        // The layouts must be invisible in the answers: same trajectories,
        // bit-identical similarities, top to bottom of the top-k.
        assert_eq!(
            legacy.0, layout_pass.0,
            "CSR/bitset pass diverged from the legacy layout"
        );

        let nq = queries.len().max(1) as f64;
        let mut rows = Vec::new();
        for (mode, pass) in [("legacy", &legacy), ("csr/bitset", &layout_pass)] {
            let (_, latencies, visited, candidates, wall) = pass;
            let mut row = Row {
                experiment: "t2p".into(),
                dataset: ds.name.clone(),
                algorithm: format!("expansion ({mode})"),
                parameter: "layout".into(),
                value: 0.0,
                queries: queries.len(),
                runtime_ms: wall.as_secs_f64() * 1_000.0 / nq,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited: *visited as f64 / nq,
                candidates: *candidates as f64 / nq,
                candidate_ratio: *candidates as f64 / (ds.store.len() as f64 * nq),
                pruning_ratio: 1.0 - *candidates as f64 / (ds.store.len() as f64 * nq),
                bound_gap: 0.0,
                recall: 1.0, // asserted bit-identical to the legacy pass
            };
            latencies.fill(&mut row);
            rows.push(row);
        }
        print!(
            "{}",
            render_table(
                "T2′ — hot-path data layouts: identical top-k, less time (extension)",
                &rows
            )
        );
        println!(
            "t2p summary: csr/bitset {:.2}× vs legacy (legacy {:.3} ms/query → \
             csr/bitset {:.3} ms/query); layout tables built in {:.1} ms",
            legacy.4.as_secs_f64() / layout_pass.4.as_secs_f64().max(1e-12),
            legacy.4.as_secs_f64() * 1_000.0 / nq,
            layout_pass.4.as_secs_f64() * 1_000.0 / nq,
            build_wall.as_secs_f64() * 1_000.0,
        );
        all_rows.extend(rows);
    }

    // ---------------- F1: number of query locations ----------------
    if wants(&args, "f1") {
        let mut rows = Vec::new();
        for m in [2usize, 4, 6, 8, 10] {
            let queries = make_queries(&ds, args.queries, m, 3, 0.5, 1, 0xf1);
            for (n, a) in algorithms(false) {
                rows.push(measure(
                    "f1",
                    &ds,
                    &db,
                    &n,
                    a.as_ref(),
                    &queries,
                    "m",
                    m as f64,
                ));
            }
        }
        print!(
            "{}",
            render_table("F1 — effect of #query locations m", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F2: preference parameter λ ----------------
    if wants(&args, "f2") {
        let mut rows = Vec::new();
        for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let queries = make_queries(&ds, args.queries, 4, 3, lambda, 1, 0xf2);
            for (n, a) in algorithms(false) {
                rows.push(measure(
                    "f2",
                    &ds,
                    &db,
                    &n,
                    a.as_ref(),
                    &queries,
                    "lambda",
                    lambda,
                ));
            }
        }
        print!(
            "{}",
            render_table("F2 — effect of preference parameter λ", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F3: trajectory cardinality |P| ----------------
    if wants(&args, "f3") {
        let mut rows = Vec::new();
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let n = ((args.trips as f64 * frac) as usize).max(10);
            let sub = with_trips(&base_cfg, n);
            let sub_db = open(&sub);
            let queries = make_queries(&sub, args.queries, 4, 3, 0.5, 1, 0xf3);
            for (name, a) in algorithms(false) {
                rows.push(measure(
                    "f3",
                    &sub,
                    &sub_db,
                    &name,
                    a.as_ref(),
                    &queries,
                    "|P|",
                    n as f64,
                ));
            }
        }
        print!(
            "{}",
            render_table("F3 — effect of trajectory cardinality |P|", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F4: answer size k ----------------
    if wants(&args, "f4") {
        let mut rows = Vec::new();
        for k in [1usize, 5, 10, 20, 50] {
            let queries = make_queries(&ds, args.queries, 4, 3, 0.5, k, 0xf4);
            for (n, a) in algorithms(false) {
                rows.push(measure(
                    "f4",
                    &ds,
                    &db,
                    &n,
                    a.as_ref(),
                    &queries,
                    "k",
                    k as f64,
                ));
            }
        }
        print!(
            "{}",
            render_table("F4 — effect of answer size k (extension)", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F5: number of query keywords ----------------
    if wants(&args, "f5") {
        let mut rows = Vec::new();
        for kw in [1usize, 2, 4, 8] {
            let queries = make_queries(&ds, args.queries, 4, kw, 0.5, 1, 0xf5);
            for (n, a) in algorithms(false) {
                rows.push(measure(
                    "f5",
                    &ds,
                    &db,
                    &n,
                    a.as_ref(),
                    &queries,
                    "keywords",
                    kw as f64,
                ));
            }
        }
        print!("{}", render_table("F5 — effect of #query keywords", &rows));
        all_rows.extend(rows);
    }

    // ---------------- F6: average trajectory length ----------------
    if wants(&args, "f6") {
        let mut rows = Vec::new();
        for stride in [8usize, 4, 2, 1] {
            let mut cfg = base_cfg.clone();
            cfg.trips.sample_stride = stride;
            cfg.name = format!("{} @stride={stride}", cfg.name);
            let sub = Dataset::build(&cfg).expect("stride dataset builds");
            let avg_len = sub.stats().avg_len;
            let sub_db = open(&sub);
            let queries = make_queries(&sub, args.queries, 4, 3, 0.5, 1, 0xf6);
            for (name, a) in algorithms(false) {
                rows.push(measure(
                    "f6",
                    &sub,
                    &sub_db,
                    &name,
                    a.as_ref(),
                    &queries,
                    "avg_len",
                    avg_len,
                ));
            }
        }
        print!(
            "{}",
            render_table("F6 — effect of average trajectory length", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F7: thread count ----------------
    if wants(&args, "f7") {
        let mut rows = Vec::new();
        let queries = make_queries(&ds, args.queries.max(32), 4, 3, 0.5, 1, 0xf7);
        for threads in [1usize, 2, 4, 8] {
            let algo = Expansion::default();
            let (results, wall) =
                time(|| parallel::run_batch(&db, &algo, &queries, threads).expect("batch runs"));
            let visited: usize = results.iter().map(|r| r.metrics.visited_trajectories).sum();
            let candidates: usize = results.iter().map(|r| r.metrics.candidates).sum();
            // per-query latencies come from each result's own clock, so
            // the percentiles reflect in-worker time, not queueing
            let mut latencies = LatencyStats::new();
            for r in &results {
                latencies.record(r.metrics.runtime);
            }
            let mut row = Row {
                experiment: "f7".into(),
                dataset: ds.name.clone(),
                algorithm: "expansion".into(),
                parameter: "threads".into(),
                value: threads as f64,
                queries: queries.len(),
                runtime_ms: wall.as_secs_f64() * 1_000.0 / queries.len() as f64,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited: visited as f64 / queries.len() as f64,
                candidates: candidates as f64 / queries.len() as f64,
                candidate_ratio: candidates as f64 / (ds.store.len() * queries.len()) as f64,
                pruning_ratio: 1.0 - candidates as f64 / (ds.store.len() * queries.len()) as f64,
                bound_gap: 0.0,
                recall: 1.0,
            };
            latencies.fill(&mut row);
            rows.push(row);
        }
        print!(
            "{}",
            render_table("F7 — effect of thread count (batch wall time)", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F8: scheduler ablation ----------------
    if wants(&args, "f8") {
        let mut rows = Vec::new();
        let queries = make_queries(&ds, args.queries, 6, 3, 0.5, 1, 0xf8);
        for (label, sched) in [
            ("heuristic", Scheduler::heuristic()),
            ("round-robin", Scheduler::RoundRobin),
            ("min-radius", Scheduler::MinRadius),
        ] {
            let algo = Expansion::new(sched);
            rows.push(measure(
                "f8",
                &ds,
                &db,
                label,
                &algo,
                &queries,
                "scheduler",
                0.0,
            ));
        }
        print!(
            "{}",
            render_table("F8 — scheduling strategy ablation", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- F9: vocabulary size ----------------
    if wants(&args, "f9") {
        let mut rows = Vec::new();
        for vocab in [100usize, 200, 400, 800] {
            let mut cfg = base_cfg.clone();
            cfg.tags.vocab_size = vocab;
            cfg.name = format!("{} @vocab={vocab}", cfg.name);
            let sub = Dataset::build(&cfg).expect("vocab dataset builds");
            let sub_db = open(&sub);
            let queries = make_queries(&sub, args.queries, 4, 3, 0.5, 1, 0xf9);
            for (name, a) in algorithms(false) {
                rows.push(measure(
                    "f9",
                    &sub,
                    &sub_db,
                    &name,
                    a.as_ref(),
                    &queries,
                    "vocab",
                    vocab as f64,
                ));
            }
        }
        print!("{}", render_table("F9 — effect of vocabulary size", &rows));
        all_rows.extend(rows);
    }

    // ---------------- F10: temporal channel ----------------
    if wants(&args, "f10") {
        let mut rows = Vec::new();
        let tidx = ds.store.build_timestamp_index();
        let tdb = db.with_timestamp_index(&tidx);
        let base = make_queries(&ds, args.queries, 4, 3, 0.5, 1, 0xf10);
        let temporal: Vec<UotsQuery> = base
            .iter()
            .enumerate()
            .map(|(i, q)| {
                UotsQuery::with_options(
                    q.locations().to_vec(),
                    q.keywords().clone(),
                    vec![(6.0 + (i as f64 % 12.0)) * 3_600.0],
                    QueryOptions {
                        weights: Weights::new(0.4, 0.3, 0.3).expect("valid"),
                        ..Default::default()
                    },
                )
                .expect("valid temporal query")
            })
            .collect();
        let algo = Expansion::default();
        rows.push(measure(
            "f10",
            &ds,
            &tdb,
            "spatial+textual",
            &algo,
            &base,
            "channels",
            2.0,
        ));
        rows.push(measure(
            "f10",
            &ds,
            &tdb,
            "spatial+textual+temporal",
            &algo,
            &temporal,
            "channels",
            3.0,
        ));
        print!(
            "{}",
            render_table("F10 — temporal channel (extension)", &rows)
        );
        all_rows.extend(rows);
    }

    // ---------------- J1: trajectory similarity self-join (extension) ----
    if wants(&args, "j1") {
        let mut rows = Vec::new();
        // the join touches every trajectory as a probe; keep it to a
        // join-sized subset of the main dataset scale
        let join_trips = (args.trips / 10).clamp(200, 2_000);
        let jds = with_trips(&base_cfg, join_trips);
        let tidx = jds.store.build_timestamp_index();
        for theta in [0.7f64, 0.8, 0.9] {
            let cfg = uots_join::JoinConfig {
                theta,
                ..Default::default()
            };
            let (result, wall) = time(|| {
                uots_join::ts_join(&jds.network, &jds.store, &jds.vertex_index, &tidx, &cfg, 2)
                    .expect("join runs")
            });
            let n = jds.store.len();
            rows.push(Row {
                experiment: "j1".into(),
                dataset: jds.name.clone(),
                algorithm: format!("ts-join pairs={}", result.pairs.len()),
                parameter: "theta".into(),
                value: theta,
                queries: n,
                runtime_ms: wall.as_secs_f64() * 1_000.0,
                // one join = one measurement: the distribution is a point
                p50_ms: wall.as_secs_f64() * 1_000.0,
                p95_ms: wall.as_secs_f64() * 1_000.0,
                p99_ms: wall.as_secs_f64() * 1_000.0,
                max_ms: wall.as_secs_f64() * 1_000.0,
                visited: result.visited_trajectories as f64 / n as f64,
                candidates: result.candidates as f64 / n as f64,
                candidate_ratio: result.candidates as f64 / (n * n) as f64,
                pruning_ratio: 1.0 - result.candidates as f64 / (n * n) as f64,
                bound_gap: result.completeness.bound_gap(),
                recall: 1.0,
            });
        }
        print!(
            "{}",
            render_table(
                "J1 — trajectory similarity self-join (extension; runtime is the whole join)",
                &rows
            )
        );
        all_rows.extend(rows);
    }

    // ---------------- D1: anytime degradation curve (extension) ----------
    if wants(&args, "d1") {
        let mut rows = Vec::new();
        let k = 5usize;
        let queries = make_queries(&ds, args.queries, 4, 3, 0.5, k, 0xd1);
        let algo = Expansion::default();
        // unbudgeted reference runs: per-query settled work + the true top-k
        let reference: Vec<(usize, Vec<_>)> = queries
            .iter()
            .map(|q| {
                let r = algo.run(&db, q).expect("reference run");
                (r.metrics.settled_vertices.max(1), r.ids())
            })
            .collect();
        for frac in [0.05f64, 0.1, 0.25, 0.5, 1.0] {
            let mut gap_sum = 0.0;
            let mut recall_sum = 0.0;
            let mut visited = 0usize;
            let mut candidates = 0usize;
            let mut latencies = LatencyStats::new();
            let start = std::time::Instant::now();
            for (q, (settled_full, oracle_ids)) in queries.iter().zip(&reference) {
                let budget = ExecutionBudget::default()
                    .with_max_settled(((*settled_full as f64) * frac).ceil() as usize);
                let bq = q
                    .reoptioned(QueryOptions {
                        budget,
                        ..q.options().clone()
                    })
                    .expect("budgeted query");
                let q_start = std::time::Instant::now();
                let r = algo.run(&db, &bq).expect("budgeted run");
                latencies.record(q_start.elapsed());
                gap_sum += r.completeness.bound_gap();
                let hit = r.ids().iter().filter(|id| oracle_ids.contains(id)).count();
                recall_sum += hit as f64 / oracle_ids.len().max(1) as f64;
                visited += r.metrics.visited_trajectories;
                candidates += r.metrics.candidates;
            }
            let wall = start.elapsed();
            let nq = queries.len().max(1) as f64;
            let mut row = Row {
                experiment: "d1".into(),
                dataset: ds.name.clone(),
                algorithm: "expansion".into(),
                parameter: "budget".into(),
                value: frac,
                queries: queries.len(),
                runtime_ms: wall.as_secs_f64() * 1_000.0 / nq,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited: visited as f64 / nq,
                candidates: candidates as f64 / nq,
                candidate_ratio: candidates as f64 / (ds.store.len() as f64 * nq),
                pruning_ratio: 1.0 - candidates as f64 / (ds.store.len() as f64 * nq),
                bound_gap: gap_sum / nq,
                recall: recall_sum / nq,
            };
            latencies.fill(&mut row);
            rows.push(row);
        }
        print!(
            "{}",
            render_table(
                "D1 — anytime degradation: result quality vs settle budget (extension)",
                &rows
            )
        );
        all_rows.extend(rows);
    }

    // ------- D2: shared distance cache — speedup and hit rate (extension) -------
    if wants(&args, "d2") {
        let k = 5usize;
        let queries = make_queries(&ds, args.queries, 4, 3, 0.5, k, 0xd2);
        let algo = Expansion::default();
        let cache = Arc::new(DistanceCache::new(DEFAULT_CACHE_CAPACITY));
        let cached_ctx = SearchContext::with_cache(Arc::clone(&cache));

        // One pass over the whole workload under `ctx`; returns the exact
        // results (id + similarity bits) for the identity check, plus the
        // numbers the row needs.
        let run_pass = |ctx: &SearchContext| {
            let mut latencies = LatencyStats::new();
            let mut results: Vec<Vec<(u64, u64)>> = Vec::new();
            let mut visited = 0usize;
            let mut candidates = 0usize;
            let start = std::time::Instant::now();
            for q in &queries {
                let q_start = std::time::Instant::now();
                let r = algo.run_with_cache(&db, q, ctx).expect("d2 run");
                latencies.record(q_start.elapsed());
                results.push(
                    r.matches
                        .iter()
                        .map(|m| (m.id.0 as u64, m.similarity.to_bits()))
                        .collect(),
                );
                visited += r.metrics.visited_trajectories;
                candidates += r.metrics.candidates;
            }
            (results, latencies, visited, candidates, start.elapsed())
        };

        let uncached = run_pass(&SearchContext::default());
        let cold = run_pass(&cached_ctx);
        let cold_stats = cache.stats();
        let warm = run_pass(&cached_ctx);
        let warm_stats = cache.stats();

        // The cache must be invisible in the results — same trajectories,
        // bit-identical similarities, cold or warm.
        assert_eq!(uncached.0, cold.0, "cold cached pass diverged");
        assert_eq!(uncached.0, warm.0, "warm cached pass diverged");

        let rate = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        let cold_rate = rate(cold_stats.hits, cold_stats.misses);
        let warm_rate = rate(
            warm_stats.hits - cold_stats.hits,
            warm_stats.misses - cold_stats.misses,
        );

        let nq = queries.len().max(1) as f64;
        let mut rows = Vec::new();
        for (mode, hit_rate, pass) in [
            ("uncached", 0.0, &uncached),
            ("cold-cache", cold_rate, &cold),
            ("warm-cache", warm_rate, &warm),
        ] {
            let (_, latencies, visited, candidates, wall) = pass;
            let mut row = Row {
                experiment: "d2".into(),
                dataset: ds.name.clone(),
                algorithm: format!("expansion ({mode})"),
                parameter: "hit-rate".into(),
                value: hit_rate,
                queries: queries.len(),
                runtime_ms: wall.as_secs_f64() * 1_000.0 / nq,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited: *visited as f64 / nq,
                candidates: *candidates as f64 / nq,
                candidate_ratio: *candidates as f64 / (ds.store.len() as f64 * nq),
                pruning_ratio: 1.0 - *candidates as f64 / (ds.store.len() as f64 * nq),
                bound_gap: 0.0,
                recall: 1.0, // asserted bit-identical to the uncached run
            };
            latencies.fill(&mut row);
            rows.push(row);
        }
        print!(
            "{}",
            render_table(
                "D2 — shared distance cache: identical results, less work (extension)",
                &rows
            )
        );
        println!(
            "d2 summary: warm-pass speedup {:.2}× (uncached {:.3} ms/query → warm \
             {:.3} ms/query), warm hit rate {:.1}%, {} inserts, {} evictions",
            uncached.4.as_secs_f64() / warm.4.as_secs_f64().max(1e-12),
            uncached.4.as_secs_f64() * 1_000.0 / nq,
            warm.4.as_secs_f64() * 1_000.0 / nq,
            warm_rate * 100.0,
            warm_stats.inserts,
            warm_stats.evictions,
        );
        all_rows.extend(rows);
    }

    // ------- D3: live ingest — epoch swaps vs the frozen baseline -------
    if wants(&args, "d3") {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use uots_trajectory::TrajectoryId;

        let k = 5usize;
        let queries = make_queries(&ds, args.queries, 4, 3, 0.5, k, 0xd3);
        let algo = Expansion::default();
        let mgr = EpochManager::new(
            Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.len(),
        );
        let nq = queries.len().max(1) as f64;

        // one workload pass against a pinned snapshot; records latencies into
        // the caller's accumulator, returns per-query fingerprints for the
        // identity checks plus visited count and wall time
        let run_pass = |snapshot: &uots_core::EpochSnapshot, latencies: &mut LatencyStats| {
            let db = snapshot.database();
            let mut results: Vec<Vec<(u64, u64)>> = Vec::new();
            let mut visited = 0usize;
            let start = std::time::Instant::now();
            for q in &queries {
                let q_start = std::time::Instant::now();
                let r = algo.run(&db, q).expect("d3 run");
                latencies.record(q_start.elapsed());
                results.push(
                    r.matches
                        .iter()
                        .map(|m| (m.id.0 as u64, m.similarity.to_bits()))
                        .collect(),
                );
                visited += r.metrics.visited_trajectories;
            }
            (results, visited, start.elapsed())
        };

        // frozen baseline: the seed snapshot, no churn
        let mut frozen_latencies = LatencyStats::new();
        let (_, frozen_visited, frozen_wall) = run_pass(&mgr.snapshot(), &mut frozen_latencies);

        // churn: epochs of mixed ingest/retire, workload re-run per epoch
        let epochs = 4usize;
        let batch = (args.trips / 8).clamp(8, 256);
        let mut rng = StdRng::seed_from_u64(0xd3c4);
        let mut next_id = ds.store.len();
        let mut live = next_id;
        let mut mutations = 0u64;
        let mut mutate_time = std::time::Duration::ZERO;
        let mut churn_latencies = LatencyStats::new();
        let mut churn_visited = 0usize;
        let mut churn_wall = std::time::Duration::ZERO;
        for _ in 0..epochs {
            let m_start = std::time::Instant::now();
            for _ in 0..batch {
                if live <= 2 || rng.gen_bool(0.7) {
                    // re-ingest a clone of a stored trip: realistic shape,
                    // no dependency on the generator's RNG stream
                    let src = TrajectoryId(rng.gen_range(0..ds.store.len()) as u32);
                    mgr.ingest(ds.store.get(src).clone());
                    next_id += 1;
                    live += 1;
                } else if mgr.retire(TrajectoryId(rng.gen_range(0..next_id) as u32)) {
                    live -= 1;
                }
                mutations += 1;
            }
            let snapshot = mgr.publish();
            mutate_time += m_start.elapsed();
            assert_eq!(snapshot.live().num_live(), live);
            let (results, visited, wall) = run_pass(&snapshot, &mut churn_latencies);
            churn_visited += visited;
            churn_wall += wall;

            // in-run differential: the served epoch must answer exactly as
            // a from-scratch rebuild of the surviving trajectories
            let (compacted, id_map) = snapshot.rebuild_compacted();
            let vidx = compacted.build_vertex_index(ds.network.num_nodes());
            let kidx = compacted.build_keyword_index(ds.vocab.len());
            let oracle_db =
                Database::new(snapshot.network(), &compacted, &vidx).with_keyword_index(&kidx);
            for (q, served) in queries.iter().zip(&results).take(3) {
                let oracle = algo.run(&oracle_db, q).expect("d3 oracle");
                let mapped: Vec<(u64, u64)> = served
                    .iter()
                    .map(|&(id, bits)| {
                        let new = id_map[id as usize].expect("served id is live");
                        (new.0 as u64, bits)
                    })
                    .collect();
                let want: Vec<(u64, u64)> = oracle
                    .matches
                    .iter()
                    .map(|m| (m.id.0 as u64, m.similarity.to_bits()))
                    .collect();
                assert_eq!(
                    mapped,
                    want,
                    "epoch {} diverged from rebuild",
                    snapshot.epoch()
                );
            }
        }

        let throughput = mutations as f64 / mutate_time.as_secs_f64().max(1e-12);
        let churn_nq = (nq * epochs as f64).max(1.0);
        let mut rows = Vec::new();
        for (mode, latencies, visited, wall, per_q, value) in [
            (
                "frozen",
                &frozen_latencies,
                frozen_visited as f64 / nq,
                frozen_wall,
                nq,
                0.0,
            ),
            (
                "under-churn",
                &churn_latencies,
                churn_visited as f64 / churn_nq,
                churn_wall,
                churn_nq,
                epochs as f64,
            ),
        ] {
            let mut row = Row {
                experiment: "d3".into(),
                dataset: ds.name.clone(),
                algorithm: format!("expansion ({mode})"),
                parameter: "epochs".into(),
                value,
                queries: per_q as usize,
                runtime_ms: wall.as_secs_f64() * 1_000.0 / per_q,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited,
                candidates: 0.0,
                candidate_ratio: 0.0,
                pruning_ratio: 0.0,
                bound_gap: 0.0,
                recall: 1.0, // asserted bit-identical to the rebuild oracle
            };
            latencies.fill(&mut row);
            rows.push(row);
        }
        print!(
            "{}",
            render_table(
                "D3 — live ingest: query latency under epoch churn (extension)",
                &rows
            )
        );
        println!(
            "d3 summary: {mutations} mutations over {epochs} epochs at {throughput:.0} \
             mutations/s (batch {batch}, publish included); query latency frozen \
             {:.3} ms → under churn {:.3} ms; every epoch verified bit-identical \
             to a from-scratch rebuild",
            frozen_wall.as_secs_f64() * 1_000.0 / nq,
            churn_wall.as_secs_f64() * 1_000.0 / churn_nq,
        );
        all_rows.extend(rows);
    }

    // ------- D4: durability — fsync policy cost and recovery time -------
    if wants(&args, "d4") {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::time::{Duration, Instant};
        use uots::core::wal::{FsyncPolicy, WalConfig, WalWriter};
        use uots::durable::{recover, DurableIngest, RecoverySource};
        use uots_core::Mutation;
        use uots_trajectory::TrajectoryId;

        let root = std::env::temp_dir().join(format!("uots_d4_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);

        // one scripted mutation stream, identical across every policy run
        let batches_total = 256usize;
        let batch_size = 8usize;
        let batches: Vec<Vec<Mutation>> = {
            let mut rng = StdRng::seed_from_u64(0xd4);
            let mut next_id = ds.store.len();
            (0..batches_total)
                .map(|_| {
                    (0..batch_size)
                        .map(|_| {
                            if rng.gen_bool(0.7) {
                                let src = TrajectoryId(rng.gen_range(0..ds.store.len()) as u32);
                                next_id += 1;
                                Mutation::Insert(ds.store.get(src).clone())
                            } else {
                                Mutation::Retire(TrajectoryId(rng.gen_range(0..next_id) as u32))
                            }
                        })
                        .collect()
                })
                .collect()
        };
        let mutations_total = (batches_total * batch_size) as f64;

        let mut rows = Vec::new();
        let mut summary_tp = Vec::new();
        for (name, policy) in [
            ("batch", FsyncPolicy::EveryBatch),
            (
                "interval:5",
                FsyncPolicy::Interval(Duration::from_millis(5)),
            ),
            ("off", FsyncPolicy::Never),
        ] {
            let dir = root.join(format!("fsync-{}", name.replace(':', "_")));
            std::fs::create_dir_all(&dir).expect("d4 dir");
            let mut ingest = DurableIngest::create(
                Arc::new(ds.network.clone()),
                ds.store.clone(),
                ds.vocab.clone(),
                &dir,
                WalConfig {
                    fsync: policy,
                    ..WalConfig::default()
                },
                None,
                None,
            )
            .expect("d4 wal opens");
            let start = Instant::now();
            for batch in &batches {
                ingest.apply(batch.clone()).expect("d4 apply");
            }
            let wall = start.elapsed();
            let throughput = mutations_total / wall.as_secs_f64().max(1e-12);
            summary_tp.push((name, throughput));
            rows.push(Row {
                experiment: "d4".into(),
                dataset: ds.name.clone(),
                algorithm: format!("wal ingest (fsync={name})"),
                parameter: "mutations/s".into(),
                value: throughput,
                queries: batches_total,
                runtime_ms: wall.as_secs_f64() * 1_000.0 / batches_total as f64,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited: mutations_total,
                candidates: 0.0,
                candidate_ratio: 0.0,
                pruning_ratio: 0.0,
                bound_gap: 0.0,
                recall: 1.0,
            });
        }

        // recovery time vs WAL length (no checkpoint: full replay + rebuild)
        let mut recovery_summary = Vec::new();
        for len in [batches_total / 4, batches_total / 2, batches_total] {
            let dir = root.join(format!("recover-{len}"));
            std::fs::create_dir_all(&dir).expect("d4 dir");
            let mut writer = WalWriter::open(
                &dir,
                WalConfig {
                    fsync: FsyncPolicy::Never,
                    ..WalConfig::default()
                },
            )
            .expect("d4 wal opens");
            for batch in &batches[..len] {
                writer.append(batch).expect("d4 append");
            }
            drop(writer);
            let start = Instant::now();
            let recovered = recover(&dir, Some(&ds), None).expect("d4 recovery");
            let wall = start.elapsed();
            assert_eq!(recovered.report.replayed_batches as usize, len);
            recovery_summary.push((len, wall));
            rows.push(Row {
                experiment: "d4".into(),
                dataset: ds.name.clone(),
                algorithm: "recover (wal only)".into(),
                parameter: "wal-batches".into(),
                value: len as f64,
                queries: 1,
                runtime_ms: wall.as_secs_f64() * 1_000.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                visited: recovered.report.replayed_mutations as f64,
                candidates: 0.0,
                candidate_ratio: 0.0,
                pruning_ratio: 0.0,
                bound_gap: 0.0,
                recall: 1.0,
            });
        }

        // checkpoints collapse replay: same full log, checkpoint cadence on
        let dir = root.join("recover-checkpointed");
        std::fs::create_dir_all(&dir).expect("d4 dir");
        let mut ingest = DurableIngest::create(
            Arc::new(ds.network.clone()),
            ds.store.clone(),
            ds.vocab.clone(),
            &dir,
            WalConfig {
                fsync: FsyncPolicy::Never,
                ..WalConfig::default()
            },
            Some(64),
            None,
        )
        .expect("d4 wal opens");
        for (i, batch) in batches.iter().enumerate() {
            ingest.apply(batch.clone()).expect("d4 apply");
            if (i + 1) % 64 == 0 {
                ingest.publish().expect("d4 publish");
            }
        }
        drop(ingest);
        let start = Instant::now();
        let recovered = recover(&dir, Some(&ds), None).expect("d4 recovery");
        let ckpt_wall = start.elapsed();
        assert!(matches!(
            recovered.report.source,
            RecoverySource::Checkpoint(_)
        ));
        let ckpt_replayed = recovered.report.replayed_batches;
        rows.push(Row {
            experiment: "d4".into(),
            dataset: ds.name.clone(),
            algorithm: "recover (checkpoint+tail)".into(),
            parameter: "wal-batches".into(),
            value: batches_total as f64,
            queries: 1,
            runtime_ms: ckpt_wall.as_secs_f64() * 1_000.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
            visited: recovered.report.replayed_mutations as f64,
            candidates: 0.0,
            candidate_ratio: 0.0,
            pruning_ratio: 0.0,
            bound_gap: 0.0,
            recall: 1.0,
        });

        print!(
            "{}",
            render_table(
                "D4 — durability: WAL fsync cost and recovery time (extension)",
                &rows
            )
        );
        let fmt_tp = |tps: &[(&str, f64)]| {
            tps.iter()
                .map(|(n, t)| format!("{n} {t:.0}/s"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let fmt_rec = |recs: &[(usize, Duration)]| {
            recs.iter()
                .map(|(l, w)| format!("{l} batches {:.0} ms", w.as_secs_f64() * 1_000.0))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "d4 summary: ingest throughput by fsync policy — {}; recovery (full \
             replay) — {}; with checkpoints every 64 batches the same {}-batch log \
             recovers in {:.0} ms replaying only {} batches",
            fmt_tp(&summary_tp),
            fmt_rec(&recovery_summary),
            batches_total,
            ckpt_wall.as_secs_f64() * 1_000.0,
            ckpt_replayed,
        );
        let _ = std::fs::remove_dir_all(&root);
        all_rows.extend(rows);
    }

    // machine-readable perf trajectory: one BENCH_<id>.json per experiment,
    // every row tagged with the dataset preset and seed
    if let Some(dir) = &args.bench_dir {
        let dir = std::path::Path::new(dir);
        let preset = format!("{:?}", args.scale).to_lowercase();
        let seed = base_cfg.trips.seed;
        let mut ids: Vec<&str> = Vec::new();
        for r in &all_rows {
            if !ids.contains(&r.experiment.as_str()) {
                ids.push(&r.experiment);
            }
        }
        let mut written = Vec::new();
        for id in ids {
            let rows: Vec<Row> = all_rows
                .iter()
                .filter(|r| r.experiment == id)
                .cloned()
                .collect();
            match uots_bench::write_bench_json(dir, id, &preset, seed, &rows) {
                Ok(path) => written.push(path.display().to_string()),
                Err(e) => eprintln!("warning: writing BENCH_{id}.json: {e}"),
            }
        }
        if !written.is_empty() {
            println!("\nbench rows: {}", written.join(", "));
        }
    }

    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&all_rows).expect("rows serialize");
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {} rows to {path}", all_rows.len());
    }
}
