//! Phase-scoped span/event tracer with a bounded ring-buffer sink.
//!
//! A [`Recorder`] travels with one query execution. The engine marks phase
//! transitions with [`Recorder::enter`] / [`Recorder::leave`]; the recorder
//! attributes wall-clock time between transitions to the phase that was
//! active, coalescing consecutive steps of the same phase into a single
//! span. Three operating modes:
//!
//! * **disabled** ([`Recorder::disabled`]) — every call is a single
//!   `Option` branch; nothing is timed or allocated. This is the no-op sink
//!   the hot path pays for by default.
//! * **phases-only** ([`Recorder::phases_only`]) — accumulates a
//!   [`PhaseNanos`] breakdown, no span records.
//! * **tracing** ([`Recorder::tracing`]) — additionally keeps the last
//!   `capacity` coalesced phase spans in a ring buffer (oldest dropped,
//!   drop count reported) plus instant events, and renders a
//!   [`QueryTrace`] timeline at [`Recorder::finish`].
//!
//! The hot path stores only `Copy` segments (`Phase` + two offsets);
//! strings are materialized once at `finish`, off the hot path.

use crate::phase::{Phase, PhaseNanos};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Internal ring-buffer segment: one coalesced phase span. `Copy`, so
/// pushing it never allocates (the deque is pre-allocated to capacity).
#[derive(Debug, Clone, Copy)]
struct Seg {
    phase: Phase,
    start_ns: u64,
    end_ns: u64,
}

/// Internal instant-event record (static name: no hot-path allocation).
#[derive(Debug, Clone, Copy)]
struct Ev {
    name: &'static str,
    at_ns: u64,
}

#[derive(Debug)]
struct TraceBuf {
    capacity: usize,
    segs: VecDeque<Seg>,
    events: Vec<Ev>,
    dropped: u64,
}

#[derive(Debug)]
struct Active {
    label: String,
    started: Instant,
    phases: PhaseNanos,
    /// The currently open phase segment: `(phase, segment start)`.
    current: Option<(Phase, Instant)>,
    trace: Option<TraceBuf>,
}

/// Per-query telemetry recorder. See the [module docs](self) for modes.
#[derive(Debug, Default)]
pub struct Recorder {
    active: Option<Box<Active>>,
}

/// What a non-disabled [`Recorder`] produced: the per-phase time breakdown
/// and, in tracing mode, the span timeline.
#[derive(Debug, Clone)]
pub struct RecorderReport {
    /// Wall-clock nanoseconds attributed to each phase.
    pub phases: PhaseNanos,
    /// The span timeline (tracing mode only).
    pub trace: Option<QueryTrace>,
}

impl Recorder {
    /// The no-op sink: every recorder call is one branch, nothing is
    /// allocated or timed.
    pub fn disabled() -> Recorder {
        Recorder { active: None }
    }

    /// Accumulates a per-phase time breakdown without keeping spans.
    pub fn phases_only(label: impl Into<String>) -> Recorder {
        Recorder {
            active: Some(Box::new(Active {
                label: label.into(),
                started: Instant::now(),
                phases: PhaseNanos::ZERO,
                current: None,
                trace: None,
            })),
        }
    }

    /// Full tracing: phase breakdown plus the last `capacity` coalesced
    /// phase spans (ring buffer, oldest dropped first) and instant events.
    pub fn tracing(label: impl Into<String>, capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            active: Some(Box::new(Active {
                label: label.into(),
                started: Instant::now(),
                phases: PhaseNanos::ZERO,
                current: None,
                trace: Some(TraceBuf {
                    capacity,
                    segs: VecDeque::with_capacity(capacity),
                    events: Vec::new(),
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether this recorder observes anything at all. Callers may use this
    /// to skip building expensive attributes, but plain `enter`/`leave`
    /// calls are already near-free when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Marks the execution as being in `phase` from now on. Consecutive
    /// `enter` calls with the same phase coalesce into one span; a
    /// different phase closes the open span and opens a new one.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        let Some(a) = self.active.as_deref_mut() else {
            return;
        };
        if let Some((cur, _)) = a.current {
            if cur == phase {
                return; // coalesce
            }
        }
        let now = Instant::now();
        a.close_current(now);
        a.current = Some((phase, now));
    }

    /// Closes the open phase span (if any); time until the next `enter` is
    /// unattributed.
    #[inline]
    pub fn leave(&mut self) {
        let Some(a) = self.active.as_deref_mut() else {
            return;
        };
        if a.current.is_some() {
            a.close_current(Instant::now());
        }
    }

    /// Records an instant event (tracing mode only). `name` must be a
    /// static string so the hot path stays allocation-free.
    #[inline]
    pub fn event(&mut self, name: &'static str) {
        let Some(a) = self.active.as_deref_mut() else {
            return;
        };
        let at_ns = a.rel_ns(Instant::now());
        if let Some(t) = a.trace.as_mut() {
            t.events.push(Ev { name, at_ns });
        }
    }

    /// The per-phase breakdown accumulated so far, including the still-open
    /// segment (which stays open). Lets an engine publish `phases` into its
    /// `SearchMetrics` while the caller keeps the recorder alive for the
    /// final trace. Zero for a disabled recorder.
    pub fn phases_snapshot(&self) -> PhaseNanos {
        match self.active.as_deref() {
            None => PhaseNanos::ZERO,
            Some(a) => {
                let mut p = a.phases;
                if let Some((phase, seg_start)) = a.current {
                    p.add(
                        phase,
                        u64::try_from(seg_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                p
            }
        }
    }

    /// Closes any open span and returns what was recorded, or `None` for a
    /// disabled recorder. The recorder is left disabled.
    pub fn finish(&mut self) -> Option<RecorderReport> {
        let mut a = self.active.take()?;
        let now = Instant::now();
        a.close_current(now);
        let total_ns = a.rel_ns(now);
        let trace = a.trace.take().map(|buf| {
            let mut spans = Vec::with_capacity(buf.segs.len() + 1);
            spans.push(SpanRecord {
                name: "query".to_owned(),
                depth: 0,
                start_ns: 0,
                end_ns: total_ns,
            });
            spans.extend(buf.segs.iter().map(|s| SpanRecord {
                name: s.phase.as_str().to_owned(),
                depth: 1,
                start_ns: s.start_ns,
                end_ns: s.end_ns,
            }));
            QueryTrace {
                query: a.label.clone(),
                total_ns,
                dropped_spans: buf.dropped,
                spans,
                events: buf
                    .events
                    .iter()
                    .map(|e| EventRecord {
                        name: e.name.to_owned(),
                        at_ns: e.at_ns,
                    })
                    .collect(),
            }
        });
        Some(RecorderReport {
            phases: a.phases,
            trace,
        })
    }
}

impl Active {
    #[inline]
    fn rel_ns(&self, at: Instant) -> u64 {
        u64::try_from(at.duration_since(self.started).as_nanos()).unwrap_or(u64::MAX)
    }

    fn close_current(&mut self, now: Instant) {
        let Some((phase, seg_start)) = self.current.take() else {
            return;
        };
        let ns = u64::try_from(now.duration_since(seg_start).as_nanos()).unwrap_or(u64::MAX);
        self.phases.add(phase, ns);
        let start_ns = self.rel_ns(seg_start);
        let end_ns = self.rel_ns(now);
        if let Some(t) = self.trace.as_mut() {
            if t.segs.len() == t.capacity {
                t.segs.pop_front();
                t.dropped += 1;
            }
            t.segs.push_back(Seg {
                phase,
                start_ns,
                end_ns,
            });
        }
    }
}

/// One span of a [`QueryTrace`] timeline. Offsets are nanoseconds relative
/// to the start of the root `query` span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// `"query"` for the root span, otherwise a [`Phase`] name.
    pub name: String,
    /// 0 for the root span, 1 for phase spans nested inside it.
    pub depth: u32,
    /// Start offset (ns, relative to query start).
    pub start_ns: u64,
    /// End offset (ns, relative to query start).
    pub end_ns: u64,
}

/// An instant event on a [`QueryTrace`] timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Offset (ns, relative to query start).
    pub at_ns: u64,
}

/// A per-query timeline: one root `query` span plus coalesced phase spans
/// nested below it. Serializes to JSON via the workspace serde.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Label identifying the traced query.
    pub query: String,
    /// Total wall-clock nanoseconds of the root span.
    pub total_ns: u64,
    /// Spans evicted from the ring buffer (0 when the capacity sufficed).
    pub dropped_spans: u64,
    /// Root span first, then phase spans in chronological order.
    pub spans: Vec<SpanRecord>,
    /// Instant events in chronological order.
    pub events: Vec<EventRecord>,
}

impl QueryTrace {
    /// Structural invariants every trace must satisfy: exactly one root
    /// span covering `[0, total_ns]`; every phase span well-formed, nested
    /// inside the root, at depth 1, in chronological non-overlapping order;
    /// and the phase spans' total duration no larger than the root's.
    pub fn validate(&self) -> Result<(), String> {
        let Some(root) = self.spans.first() else {
            return Err("trace has no spans".into());
        };
        if root.name != "query" || root.depth != 0 {
            return Err(format!("first span must be the depth-0 root, got {root:?}"));
        }
        if root.start_ns != 0 || root.end_ns != self.total_ns {
            return Err("root span must cover [0, total_ns]".into());
        }
        let mut prev_end = 0u64;
        let mut phase_total = 0u64;
        for s in &self.spans[1..] {
            if s.depth != 1 {
                return Err(format!("phase span {} has depth {}", s.name, s.depth));
            }
            if Phase::parse(&s.name).is_none() {
                return Err(format!("unknown phase span name `{}`", s.name));
            }
            if s.start_ns > s.end_ns {
                return Err(format!("span {} ends before it starts", s.name));
            }
            if s.end_ns > root.end_ns {
                return Err(format!("span {} escapes the root span", s.name));
            }
            if s.start_ns < prev_end {
                return Err(format!("span {} overlaps its predecessor", s.name));
            }
            prev_end = s.end_ns;
            phase_total += s.end_ns - s.start_ns;
        }
        if phase_total > self.total_ns {
            return Err(format!(
                "phase spans sum to {phase_total}ns > total {}ns",
                self.total_ns
            ));
        }
        for e in &self.events {
            if e.at_ns > self.total_ns {
                return Err(format!("event {} escapes the root span", e.name));
            }
        }
        Ok(())
    }

    /// Sum of all phase-span durations (excludes the root).
    pub fn phase_span_total_ns(&self) -> u64 {
        self.spans[1..].iter().map(|s| s.end_ns - s.start_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let t = Instant::now();
        while (t.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(());
        }
    }

    #[test]
    fn disabled_recorder_reports_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.enter(Phase::NetworkExpansion);
        r.event("never");
        r.leave();
        assert!(r.finish().is_none());
    }

    #[test]
    fn phases_only_accumulates_without_spans() {
        let mut r = Recorder::phases_only("q0");
        r.enter(Phase::NetworkExpansion);
        spin(50_000);
        r.enter(Phase::CandidateRefine);
        spin(50_000);
        r.leave();
        let rep = r.finish().unwrap();
        assert!(rep.trace.is_none());
        assert!(rep.phases.nanos(Phase::NetworkExpansion) > 0);
        assert!(rep.phases.nanos(Phase::CandidateRefine) > 0);
        assert_eq!(rep.phases.nanos(Phase::TextFilter), 0);
    }

    #[test]
    fn tracing_coalesces_and_nests() {
        let mut r = Recorder::tracing("q1", 64);
        for _ in 0..10 {
            r.enter(Phase::NetworkExpansion); // coalesces into one span
            spin(5_000);
        }
        r.enter(Phase::HeapMaintenance);
        spin(5_000);
        r.enter(Phase::NetworkExpansion);
        spin(5_000);
        r.leave();
        let rep = r.finish().unwrap();
        let trace = rep.trace.unwrap();
        trace.validate().expect("trace must validate");
        // 1 root + 3 coalesced spans (10 expansion steps merged into one)
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.spans[0].name, "query");
        assert_eq!(trace.spans[1].name, "network_expansion");
        assert_eq!(trace.spans[2].name, "heap_maintenance");
        assert_eq!(trace.spans[3].name, "network_expansion");
        assert_eq!(trace.dropped_spans, 0);
        // phase time never exceeds the root span
        assert!(trace.phase_span_total_ns() <= trace.total_ns);
        // breakdown matches the spans
        assert_eq!(
            rep.phases.nanos(Phase::NetworkExpansion) + rep.phases.nanos(Phase::HeapMaintenance),
            trace.phase_span_total_ns()
        );
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut r = Recorder::tracing("q2", 4);
        let seq = [
            Phase::NetworkExpansion,
            Phase::TextFilter,
            Phase::CandidateRefine,
            Phase::HeapMaintenance,
        ];
        for i in 0..10 {
            r.enter(seq[i % seq.len()]);
        }
        r.leave();
        let trace = r.finish().unwrap().trace.unwrap();
        trace.validate().expect("dropped traces still validate");
        assert_eq!(trace.spans.len(), 1 + 4);
        assert_eq!(trace.dropped_spans, 6);
    }

    #[test]
    fn events_are_timestamped_inside_the_root() {
        let mut r = Recorder::tracing("q3", 8);
        r.enter(Phase::TextFilter);
        r.event("budget_check");
        r.leave();
        let trace = r.finish().unwrap().trace.unwrap();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "budget_check");
        trace.validate().unwrap();
    }

    #[test]
    fn trace_json_round_trips() {
        let mut r = Recorder::tracing("roundtrip", 8);
        r.enter(Phase::JoinPair);
        spin(2_000);
        r.leave();
        let trace = r.finish().unwrap().trace.unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        let good = QueryTrace {
            query: "q".into(),
            total_ns: 100,
            dropped_spans: 0,
            spans: vec![
                SpanRecord {
                    name: "query".into(),
                    depth: 0,
                    start_ns: 0,
                    end_ns: 100,
                },
                SpanRecord {
                    name: "text_filter".into(),
                    depth: 1,
                    start_ns: 10,
                    end_ns: 40,
                },
            ],
            events: vec![],
        };
        good.validate().unwrap();

        let mut escapes = good.clone();
        escapes.spans[1].end_ns = 150;
        assert!(escapes.validate().is_err());

        let mut overlaps = good.clone();
        overlaps.spans.push(SpanRecord {
            name: "join_pair".into(),
            depth: 1,
            start_ns: 30,
            end_ns: 50,
        });
        assert!(overlaps.validate().is_err());

        let mut bad_name = good.clone();
        bad_name.spans[1].name = "mystery".into();
        assert!(bad_name.validate().is_err());

        let mut rootless = good;
        rootless.spans.remove(0);
        assert!(rootless.validate().is_err());
    }
}
