//! # uots-obs
//!
//! Query telemetry for the UOTS reproduction: phase-scoped tracing,
//! log-bucketed latency histograms, and a metrics registry with
//! Prometheus-text and JSON exposition.
//!
//! The paper family's evaluation reports flat CPU time and
//! visited-trajectory counts; this crate adds the *where* and the *tail*:
//!
//! * [`Phase`] / [`PhaseNanos`] — the span taxonomy (`network_expansion`,
//!   `text_filter`, `candidate_refine`, `heap_maintenance`, `join_pair`)
//!   and the per-query time breakdown that rides along in
//!   `SearchMetrics`;
//! * [`Recorder`] — a per-query span/event tracer whose disabled mode is a
//!   single branch per call (the no-op sink), and whose tracing mode keeps
//!   a bounded ring buffer of coalesced phase spans renderable as a
//!   [`QueryTrace`] JSON timeline;
//! * [`LogHistogram`] — an HDR-style log-bucketed histogram (8 sub-buckets
//!   per power of two, ≤12.5% relative quantile error, exact min/max);
//! * [`MetricsRegistry`] — named counters/gauges/histograms shared by
//!   `Arc` handles, exported as Prometheus text
//!   ([`MetricsRegistry::render_prometheus`]) or JSON
//!   ([`MetricsRegistry::render_json`]), with
//!   [`validate_prometheus_text`] closing the loop in CI.
//!
//! On top of the per-query telemetry sits the operational plane:
//!
//! * [`EventJournal`] — a bounded ring of structured operational events
//!   (what happened when: seals, retries, degradations, quarantines) with
//!   JSON-lines export and drop counting;
//! * [`TailSampler`] — tail-based sampling that keeps full trace
//!   exemplars only for slow / best-effort / errored queries;
//! * [`ObsServer`] — a dependency-free `TcpListener` thread serving
//!   `/metrics`, `/status`, `/journal`, and `/traces` live.
//!
//! ```
//! use uots_obs::{MetricsRegistry, Phase, Recorder};
//!
//! let registry = MetricsRegistry::new();
//! let mut rec = Recorder::tracing("demo-query", 256);
//! rec.enter(Phase::NetworkExpansion);
//! // ... settle vertices ...
//! rec.enter(Phase::CandidateRefine);
//! // ... refine candidates ...
//! rec.leave();
//! let report = rec.finish().unwrap();
//! registry.observe_phases(
//!     "uots_query_phase_nanoseconds",
//!     "Wall-clock nanoseconds per query phase",
//!     &report.phases,
//! );
//! let trace = report.trace.unwrap();
//! trace.validate().unwrap();
//! assert!(trace.phase_span_total_ns() <= trace.total_ns);
//! uots_obs::validate_prometheus_text(&registry.render_prometheus()).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod hist;
pub mod journal;
mod phase;
mod registry;
pub mod sampler;
pub mod serve;
mod trace;

pub use hist::LogHistogram;
pub use journal::{EventJournal, JournalEvent, Severity, DEFAULT_JOURNAL_CAPACITY};
pub use phase::{Phase, PhaseNanos, NUM_PHASES};
pub use registry::{
    validate_prometheus_text, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, LabelPair, MetricsRegistry, RegistrySnapshot, ValidationSummary,
};
pub use sampler::{
    KeepReason, SamplerStats, TailSampler, TraceExemplar, DEFAULT_EXEMPLAR_CAPACITY,
    DEFAULT_SLOW_QUANTILE,
};
pub use serve::{
    dispatch_obs, read_request, respond, HttpRequest, ObsServer, ObsState, StatusProvider,
    MAX_BODY_BYTES,
};
pub use trace::{EventRecord, QueryTrace, Recorder, RecorderReport, SpanRecord};
