//! The span taxonomy: where time goes inside one trajectory search.
//!
//! Every instrumented code path in the engine attributes its wall-clock
//! time to exactly one [`Phase`] at a time; the accumulated per-phase
//! durations travel with the query's `SearchMetrics` and feed the
//! per-phase latency histograms of the [`crate::MetricsRegistry`].

use serde::{Content, DeError, Deserialize, Serialize};
use std::time::Duration;

/// One phase of a trajectory search or join. The taxonomy is deliberately
/// coarse — six buckets that explain *why* a budget tripped, not a flame
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Incremental Dijkstra settles / full shortest-path trees / timestamp
    /// scans — acquiring network and temporal distances.
    NetworkExpansion,
    /// Keyword-index lookups, textual similarity scoring, and textual
    /// candidate ranking.
    TextFilter,
    /// Exact evaluation of fully-scanned candidates, the unvisited sweep,
    /// and filter-and-refine verification loops.
    CandidateRefine,
    /// Bound-heap pushes/pops, termination tests, and coarse round-bound
    /// recomputation.
    HeapMaintenance,
    /// One probe trajectory's candidate search inside the similarity join.
    JoinPair,
    /// Replaying settled vertices out of the shared network-distance cache
    /// instead of computing them — the cross-query memoization fast path.
    CacheReplay,
}

/// Number of phases (the length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 6;

impl Phase {
    /// Every phase, in stable order (the order of [`PhaseNanos`] slots).
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::NetworkExpansion,
        Phase::TextFilter,
        Phase::CandidateRefine,
        Phase::HeapMaintenance,
        Phase::JoinPair,
        Phase::CacheReplay,
    ];

    /// Stable snake_case name, used as the `phase` label of exported
    /// metrics and in trace JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::NetworkExpansion => "network_expansion",
            Phase::TextFilter => "text_filter",
            Phase::CandidateRefine => "candidate_refine",
            Phase::HeapMaintenance => "heap_maintenance",
            Phase::JoinPair => "join_pair",
            Phase::CacheReplay => "cache_replay",
        }
    }

    /// Inverse of [`Phase::as_str`].
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.as_str() == s)
    }

    /// The slot of this phase in [`PhaseNanos`] / [`Phase::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::NetworkExpansion => 0,
            Phase::TextFilter => 1,
            Phase::CandidateRefine => 2,
            Phase::HeapMaintenance => 3,
            Phase::JoinPair => 4,
            Phase::CacheReplay => 5,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Phase {
    fn serialize(&self) -> Content {
        Content::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Phase {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = String::deserialize(c)?;
        Phase::parse(&s).ok_or_else(|| DeError::custom(format!("unknown phase `{s}`")))
    }
}

/// Accumulated nanoseconds per phase — the per-query phase breakdown
/// carried in `SearchMetrics`. Additive under merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseNanos {
    nanos: [u64; NUM_PHASES],
}

impl PhaseNanos {
    /// All-zero breakdown.
    pub const ZERO: PhaseNanos = PhaseNanos {
        nanos: [0; NUM_PHASES],
    };

    /// Builds a breakdown directly from per-slot nanoseconds (slot order is
    /// [`Phase::ALL`]).
    pub fn from_nanos(nanos: [u64; NUM_PHASES]) -> Self {
        PhaseNanos { nanos }
    }

    /// Adds `nanos` to `phase`'s slot (saturating).
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        let slot = &mut self.nanos[phase.index()];
        *slot = slot.saturating_add(nanos);
    }

    /// Nanoseconds attributed to `phase`.
    #[inline]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Duration attributed to `phase`.
    pub fn duration(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos(phase))
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().fold(0u64, |a, &b| a.saturating_add(b)))
    }

    /// Whether no time was attributed at all (e.g. the run used a disabled
    /// recorder).
    pub fn is_zero(&self) -> bool {
        self.nanos.iter().all(|&n| n == 0)
    }

    /// Slot-wise accumulation (phase durations are additive across queries).
    pub fn merge(&mut self, other: &PhaseNanos) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Iterates `(phase, nanos)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.into_iter().map(|p| (p, self.nanos(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::parse(p.as_str()), Some(p));
            assert_eq!(Phase::ALL[p.index()], p);
        }
        assert_eq!(Phase::parse("bogus"), None);
    }

    #[test]
    fn serde_uses_snake_case_strings() {
        let json = serde_json::to_string(&Phase::NetworkExpansion).unwrap();
        assert_eq!(json, "\"network_expansion\"");
        let back: Phase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Phase::NetworkExpansion);
        assert!(serde_json::from_str::<Phase>("\"nope\"").is_err());
    }

    #[test]
    fn accumulation_and_merge() {
        let mut a = PhaseNanos::ZERO;
        a.add(Phase::TextFilter, 10);
        a.add(Phase::TextFilter, 5);
        a.add(Phase::JoinPair, 7);
        assert_eq!(a.nanos(Phase::TextFilter), 15);
        assert_eq!(a.total(), Duration::from_nanos(22));
        assert!(!a.is_zero());

        let mut b = PhaseNanos::ZERO;
        assert!(b.is_zero());
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.nanos(Phase::TextFilter), 30);
        assert_eq!(b.nanos(Phase::JoinPair), 14);
        assert_eq!(b.nanos(Phase::NetworkExpansion), 0);
    }

    #[test]
    fn saturating_never_wraps() {
        let mut a = PhaseNanos::from_nanos([u64::MAX; NUM_PHASES]);
        a.add(Phase::CandidateRefine, 1);
        let b = a;
        a.merge(&b);
        assert_eq!(a.nanos(Phase::CandidateRefine), u64::MAX);
    }
}
