//! Tail-based trace sampling: keep exemplars of the queries worth
//! debugging, drop the boring ones.
//!
//! Head sampling (trace every Nth query) mostly captures the fast,
//! healthy majority — precisely the queries nobody investigates. The
//! [`TailSampler`] decides *after* a query finishes, when its latency and
//! outcome are known, and keeps an exemplar only when the query was
//!
//! * **slow** — latency strictly above an adaptive threshold, the
//!   running p-quantile (default p99) of a [`LogHistogram`] the sampler
//!   feeds with every observed latency; the threshold therefore tracks
//!   the workload instead of needing hand-tuning (strictly above, so a
//!   perfectly uniform workload — where every latency ties the p99 —
//!   keeps nothing);
//! * **best-effort** — the execution budget interrupted it and the
//!   result carries a certified gap instead of an exact answer; or
//! * **errored** (including panicked worker queries in a batch).
//!
//! The exemplar store is a bounded ring with per-reason counters and an
//! eviction count, exported as JSON for the `/traces` endpoint of
//! [`serve`](crate::serve).
//!
//! ## Tracing modes and overhead
//!
//! A full [`QueryTrace`] exemplar requires the query to have *run* with a
//! tracing [`Recorder`](crate::Recorder) — which costs span bookkeeping on
//! every query, kept or not. The sampler therefore advertises, via
//! [`TailSampler::trace_spans`], whether callers should run queries
//! traced:
//!
//! * [`TailSampler::new`] — metadata-only: callers keep their recorder
//!   disabled; exemplars carry latency/outcome/threshold but no spans.
//!   Per-query overhead is one histogram record plus a branch.
//! * [`TailSampler::with_tracing`] — callers run each query with a
//!   tracing recorder of the advertised span capacity and hand the trace
//!   to [`observe`](TailSampler::observe); kept exemplars carry the full
//!   timeline.

use crate::hist::LogHistogram;
use crate::trace::QueryTrace;
use serde::{Content, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

/// Why an exemplar was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Latency strictly above the adaptive slow threshold.
    Slow,
    /// The budget interrupted the query; the result is BestEffort.
    BestEffort,
    /// The query failed (error or worker panic).
    Error,
}

impl KeepReason {
    /// Lowercase wire name (`"slow"` / `"best_effort"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            KeepReason::Slow => "slow",
            KeepReason::BestEffort => "best_effort",
            KeepReason::Error => "error",
        }
    }
}

impl std::fmt::Display for KeepReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One kept slow-query exemplar.
#[derive(Debug, Clone)]
pub struct TraceExemplar {
    /// Monotonic sequence number among kept exemplars.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at keep time.
    pub unix_ms: u64,
    /// Why it was kept.
    pub reason: KeepReason,
    /// Query label (algorithm name or caller-supplied).
    pub query: String,
    /// Observed latency, microseconds.
    pub latency_us: u64,
    /// The slow threshold in force when the decision was made
    /// (0 while the sampler was still warming up).
    pub threshold_us: u64,
    /// Full span timeline, when the query ran traced.
    pub trace: Option<QueryTrace>,
}

impl Serialize for TraceExemplar {
    fn serialize(&self) -> Content {
        let mut m = vec![
            ("seq".to_string(), Content::U64(self.seq)),
            ("unix_ms".to_string(), Content::U64(self.unix_ms)),
            (
                "reason".to_string(),
                Content::Str(self.reason.as_str().to_string()),
            ),
            ("query".to_string(), Content::Str(self.query.clone())),
            ("latency_us".to_string(), Content::U64(self.latency_us)),
            ("threshold_us".to_string(), Content::U64(self.threshold_us)),
        ];
        match &self.trace {
            Some(t) => m.push(("trace".to_string(), t.serialize())),
            None => m.push(("trace".to_string(), Content::Null)),
        }
        Content::Map(m)
    }
}

/// Point-in-time sampler counters ([`TailSampler::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerStats {
    /// Queries observed (kept or not).
    pub observed: u64,
    /// Exemplars kept because the query was slow.
    pub kept_slow: u64,
    /// Exemplars kept because the result was BestEffort.
    pub kept_best_effort: u64,
    /// Exemplars kept because the query errored.
    pub kept_error: u64,
    /// Kept exemplars evicted because the store wrapped.
    pub evicted: u64,
    /// Current adaptive slow threshold, microseconds (0 during warmup).
    pub threshold_us: u64,
}

impl SamplerStats {
    /// Total exemplars ever kept, across all reasons.
    pub fn kept_total(&self) -> u64 {
        self.kept_slow + self.kept_best_effort + self.kept_error
    }
}

impl Serialize for SamplerStats {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("observed".to_string(), Content::U64(self.observed)),
            ("kept_slow".to_string(), Content::U64(self.kept_slow)),
            (
                "kept_best_effort".to_string(),
                Content::U64(self.kept_best_effort),
            ),
            ("kept_error".to_string(), Content::U64(self.kept_error)),
            ("kept_total".to_string(), Content::U64(self.kept_total())),
            ("evicted".to_string(), Content::U64(self.evicted)),
            ("threshold_us".to_string(), Content::U64(self.threshold_us)),
        ])
    }
}

struct Inner {
    capacity: usize,
    quantile: f64,
    warmup: u64,
    trace_spans: Option<usize>,
    latency: Mutex<LogHistogram>,
    exemplars: Mutex<VecDeque<TraceExemplar>>,
    next_seq: AtomicU64,
    observed: AtomicU64,
    kept_slow: AtomicU64,
    kept_best_effort: AtomicU64,
    kept_error: AtomicU64,
    evicted: AtomicU64,
}

/// Tail-based slow-query sampler. Cloning is cheap (`Arc`); all clones
/// share one histogram and exemplar store. See the [module docs](self).
#[derive(Clone)]
pub struct TailSampler {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for TailSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("TailSampler")
            .field("capacity", &self.inner.capacity)
            .field("observed", &s.observed)
            .field("kept", &s.kept_total())
            .field("threshold_us", &s.threshold_us)
            .finish()
    }
}

/// Default exemplar-store capacity.
pub const DEFAULT_EXEMPLAR_CAPACITY: usize = 64;
/// Default slow quantile: a query is slow when it lands at or above the
/// running p99.
pub const DEFAULT_SLOW_QUANTILE: f64 = 0.99;
/// Observations before the adaptive threshold is trusted; until then
/// nothing is kept as "slow" (BestEffort/Error are always kept).
pub const DEFAULT_WARMUP: u64 = 64;

impl Default for TailSampler {
    fn default() -> Self {
        TailSampler::new(DEFAULT_EXEMPLAR_CAPACITY)
    }
}

impl TailSampler {
    /// Metadata-only sampler (no span timelines; callers keep recorders
    /// disabled): keeps at most `capacity` exemplars, slow = running p99
    /// after a [`DEFAULT_WARMUP`]-query warmup.
    pub fn new(capacity: usize) -> TailSampler {
        Self::build(capacity, DEFAULT_SLOW_QUANTILE, DEFAULT_WARMUP, None)
    }

    /// Full-trace sampler: callers should run each query with a tracing
    /// recorder of `span_capacity` spans and pass the resulting
    /// [`QueryTrace`] to [`observe`](Self::observe).
    pub fn with_tracing(capacity: usize, span_capacity: usize) -> TailSampler {
        Self::build(
            capacity,
            DEFAULT_SLOW_QUANTILE,
            DEFAULT_WARMUP,
            Some(span_capacity.max(1)),
        )
    }

    /// Fully explicit constructor: slow = running `quantile` after
    /// `warmup` observations.
    pub fn with_policy(
        capacity: usize,
        quantile: f64,
        warmup: u64,
        trace_spans: Option<usize>,
    ) -> TailSampler {
        Self::build(capacity, quantile, warmup, trace_spans)
    }

    fn build(
        capacity: usize,
        quantile: f64,
        warmup: u64,
        trace_spans: Option<usize>,
    ) -> TailSampler {
        let capacity = capacity.max(1);
        TailSampler {
            inner: Arc::new(Inner {
                capacity,
                quantile: quantile.clamp(0.0, 1.0),
                warmup,
                trace_spans,
                latency: Mutex::new(LogHistogram::new()),
                exemplars: Mutex::new(VecDeque::with_capacity(capacity)),
                next_seq: AtomicU64::new(0),
                observed: AtomicU64::new(0),
                kept_slow: AtomicU64::new(0),
                kept_best_effort: AtomicU64::new(0),
                kept_error: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
            }),
        }
    }

    fn lock_latency(&self) -> MutexGuard<'_, LogHistogram> {
        match self.inner.latency.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_exemplars(&self) -> MutexGuard<'_, VecDeque<TraceExemplar>> {
        match self.inner.exemplars.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Span capacity callers should trace queries with, or `None` for
    /// metadata-only sampling (run queries with a disabled recorder).
    pub fn trace_spans(&self) -> Option<usize> {
        self.inner.trace_spans
    }

    /// The current adaptive slow threshold in microseconds: the running
    /// `quantile` of every latency observed so far, or 0 while fewer than
    /// `warmup` observations exist (during warmup nothing is "slow").
    pub fn threshold_us(&self) -> u64 {
        let hist = self.lock_latency();
        if hist.count() < self.inner.warmup {
            return 0;
        }
        hist.quantile(self.inner.quantile)
    }

    /// Feeds one finished query into the sampler: records its latency
    /// into the running histogram, decides whether it deserves an
    /// exemplar (error > best-effort > slow precedence), and if so keeps
    /// one. Returns the keep reason, `None` when the query was dropped as
    /// ordinary.
    ///
    /// `trace` is attached to the kept exemplar if present; pass `None`
    /// when running metadata-only (see [`trace_spans`](Self::trace_spans)).
    pub fn observe(
        &self,
        query: &str,
        latency_us: u64,
        best_effort: bool,
        errored: bool,
        trace: Option<QueryTrace>,
    ) -> Option<KeepReason> {
        self.inner.observed.fetch_add(1, Ordering::Relaxed);
        // threshold from the state *before* this observation, so one
        // outlier cannot raise the bar that judges it
        let (warmed, threshold_us) = {
            let mut hist = self.lock_latency();
            let warmed = hist.count() >= self.inner.warmup;
            let threshold = if warmed {
                hist.quantile(self.inner.quantile)
            } else {
                0
            };
            hist.record(latency_us);
            (warmed, threshold)
        };
        let reason = if errored {
            KeepReason::Error
        } else if best_effort {
            KeepReason::BestEffort
        } else if warmed && latency_us > threshold_us {
            KeepReason::Slow
        } else {
            return None;
        };
        match reason {
            KeepReason::Slow => self.inner.kept_slow.fetch_add(1, Ordering::Relaxed),
            KeepReason::BestEffort => self.inner.kept_best_effort.fetch_add(1, Ordering::Relaxed),
            KeepReason::Error => self.inner.kept_error.fetch_add(1, Ordering::Relaxed),
        };
        let exemplar = TraceExemplar {
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
                .unwrap_or(0),
            reason,
            query: query.to_string(),
            latency_us,
            threshold_us,
            trace,
        };
        let mut store = self.lock_exemplars();
        if store.len() == self.inner.capacity {
            store.pop_front();
            self.inner.evicted.fetch_add(1, Ordering::Relaxed);
        }
        store.push_back(exemplar);
        Some(reason)
    }

    /// The currently retained exemplars, oldest first.
    pub fn exemplars(&self) -> Vec<TraceExemplar> {
        self.lock_exemplars().iter().cloned().collect()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> SamplerStats {
        SamplerStats {
            observed: self.inner.observed.load(Ordering::Relaxed),
            kept_slow: self.inner.kept_slow.load(Ordering::Relaxed),
            kept_best_effort: self.inner.kept_best_effort.load(Ordering::Relaxed),
            kept_error: self.inner.kept_error.load(Ordering::Relaxed),
            evicted: self.inner.evicted.load(Ordering::Relaxed),
            threshold_us: self.threshold_us(),
        }
    }

    /// Renders `{"stats": ..., "exemplars": [...]}` as JSON — the
    /// `/traces` endpoint payload.
    pub fn export_json(&self) -> String {
        let doc = Content::Map(vec![
            ("stats".to_string(), self.stats().serialize()),
            (
                "exemplars".to_string(),
                Content::Seq(self.exemplars().iter().map(|e| e.serialize()).collect()),
            ),
        ]);
        struct Raw(Content);
        impl Serialize for Raw {
            fn serialize(&self) -> Content {
                self.0.clone()
            }
        }
        serde_json::to_string(&Raw(doc)).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_baseline(s: &TailSampler, n: u64, latency: u64) {
        for i in 0..n {
            let kept = s.observe(&format!("q{i}"), latency, false, false, None);
            // constant latencies tie the quantile and are never "slow"
            assert_eq!(kept, None, "query {i}");
        }
    }

    #[test]
    fn warmup_keeps_nothing_as_slow() {
        let s = TailSampler::new(8);
        feed_baseline(&s, DEFAULT_WARMUP - 1, 100);
        assert_eq!(s.threshold_us(), 0, "below warmup count");
        feed_baseline(&s, 2, 100);
        assert_eq!(s.stats().kept_slow, 0);
        assert_eq!(s.threshold_us(), 100, "warmed: running p99 of the workload");
    }

    #[test]
    fn outlier_above_running_p99_is_kept() {
        let s = TailSampler::new(8);
        feed_baseline(&s, 200, 100);
        let kept = s.observe("slowpoke", 10_000, false, false, None);
        assert_eq!(kept, Some(KeepReason::Slow));
        let ex = s.exemplars();
        let last = ex.last().unwrap();
        assert_eq!(last.query, "slowpoke");
        assert_eq!(last.latency_us, 10_000);
        assert!(last.threshold_us > 0 && last.threshold_us <= 10_000);
        assert!(last.trace.is_none());
    }

    #[test]
    fn fast_queries_after_warmup_are_dropped() {
        let s = TailSampler::new(8);
        feed_baseline(&s, 200, 1_000);
        // well below the p99 of a 1ms-uniform workload
        assert_eq!(s.observe("fast", 10, false, false, None), None);
        assert_eq!(s.stats().kept_slow, 0);
    }

    #[test]
    fn best_effort_and_error_always_kept_even_during_warmup() {
        let s = TailSampler::new(8);
        assert_eq!(
            s.observe("be", 5, true, false, None),
            Some(KeepReason::BestEffort)
        );
        assert_eq!(
            s.observe("err", 5, false, true, None),
            Some(KeepReason::Error)
        );
        // error outranks best-effort when both hold
        assert_eq!(
            s.observe("both", 5, true, true, None),
            Some(KeepReason::Error)
        );
        let st = s.stats();
        assert_eq!(st.kept_best_effort, 1);
        assert_eq!(st.kept_error, 2);
    }

    #[test]
    fn store_is_bounded_and_counts_evictions() {
        let s = TailSampler::new(3);
        for i in 0..10 {
            s.observe(&format!("e{i}"), 1, false, true, None);
        }
        let ex = s.exemplars();
        assert_eq!(ex.len(), 3);
        assert_eq!(s.stats().evicted, 7);
        assert_eq!(ex[0].query, "e7");
        assert_eq!(ex[2].query, "e9");
    }

    #[test]
    fn adaptive_threshold_tracks_the_workload() {
        let s = TailSampler::new(8);
        feed_baseline(&s, 200, 100);
        let low = s.threshold_us();
        // the workload shifts 50× slower; the first shifted queries are
        // kept as outliers, then the threshold follows the new regime
        for i in 0..2_000 {
            s.observe(&format!("shift{i}"), 5_000, false, false, None);
        }
        let high = s.threshold_us();
        assert!(
            high > low,
            "threshold must follow the workload: {low} -> {high}"
        );
    }

    #[test]
    fn export_json_is_parseable_and_carries_traces() {
        let s = TailSampler::with_tracing(4, 16);
        assert_eq!(s.trace_spans(), Some(16));
        let mut rec = crate::Recorder::tracing("traced", 16);
        rec.enter(crate::Phase::NetworkExpansion);
        rec.leave();
        let trace = rec.finish().unwrap().trace.unwrap();
        s.observe("traced", 50, true, false, Some(trace));
        let json = s.export_json();
        // parse back into the raw Content tree to check document shape
        struct RawDoc(serde::Content);
        impl serde::Deserialize for RawDoc {
            fn deserialize(c: &serde::Content) -> Result<Self, serde::DeError> {
                Ok(RawDoc(c.clone()))
            }
        }
        let doc = serde_json::from_str::<RawDoc>(&json).expect("valid json").0;
        let stats = doc.get("stats").expect("stats key");
        assert!(stats.get("kept_best_effort").is_some());
        let ex = doc.get("exemplars").and_then(|e| e.as_seq()).unwrap();
        assert_eq!(ex.len(), 1);
        assert!(
            ex[0].get("trace").and_then(|t| t.get("spans")).is_some(),
            "kept exemplar carries the span timeline"
        );
    }

    #[test]
    fn concurrent_observers_share_state() {
        let s = TailSampler::new(64);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        s.observe(&format!("t{t}-{i}"), 100 + i, false, false, None);
                    }
                });
            }
        });
        assert_eq!(s.stats().observed, 1000);
    }
}
