//! Live exposition endpoint: a dependency-free HTTP/1.1 server over
//! `std::net::TcpListener` on a plain OS thread — no async runtime.
//!
//! A long-running ingest or query batch becomes inspectable *while it
//! runs*: start an [`ObsServer`] next to the work, hand it clones of the
//! observability handles, and `curl` the process from outside.
//!
//! ## Endpoint contract
//!
//! | path | payload | source |
//! |------|---------|--------|
//! | `GET /metrics` | Prometheus text exposition 0.0.4 | [`MetricsRegistry::render_prometheus`] |
//! | `GET /status`  | JSON health document | caller-installed provider ([`ObsState::with_status`]) |
//! | `GET /journal?n=K` | JSON lines, the `K` (default 128) most recent events | [`EventJournal::export_jsonl`] |
//! | `GET /traces`  | `{"stats":…,"exemplars":[…]}` JSON | [`TailSampler::export_json`] |
//! | `GET /` | plain-text index of the above | — |
//!
//! Every `/metrics` response is re-validated with
//! [`validate_prometheus_text`](crate::validate_prometheus_text) before it
//! leaves the process; a registry that somehow renders an invalid
//! exposition produces a 500, never a silently-malformed 200.
//!
//! The server holds only cheap `Arc` clones of the handles: it never
//! blocks the instrumented hot path, and components the caller did not
//! install answer 404. One connection is served at a time (requests are
//! a few hundred bytes and responses are built in memory, so a scrape is
//! microseconds; an idle keep-alive peer cannot starve others because
//! every response closes the connection and reads carry a timeout).

use crate::journal::EventJournal;
use crate::registry::{validate_prometheus_text, MetricsRegistry};
use crate::sampler::TailSampler;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the `/status` JSON document on demand. Installed by the
/// embedder so the obs crate stays independent of the durable facade's
/// status types.
pub type StatusProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// What an [`ObsServer`] exposes: any subset of the observability
/// handles. Missing components answer 404 on their endpoint.
#[derive(Clone, Default)]
pub struct ObsState {
    registry: Option<MetricsRegistry>,
    journal: Option<EventJournal>,
    sampler: Option<TailSampler>,
    status: Option<StatusProvider>,
}

impl std::fmt::Debug for ObsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsState")
            .field("registry", &self.registry.is_some())
            .field("journal", &self.journal.is_some())
            .field("sampler", &self.sampler.is_some())
            .field("status", &self.status.is_some())
            .finish()
    }
}

impl ObsState {
    /// An empty state; add components with the `with_*` builders.
    pub fn new() -> ObsState {
        ObsState::default()
    }

    /// Serves `registry` at `/metrics`.
    pub fn with_registry(mut self, registry: MetricsRegistry) -> ObsState {
        self.registry = Some(registry);
        self
    }

    /// Serves `journal` at `/journal`.
    pub fn with_journal(mut self, journal: EventJournal) -> ObsState {
        self.journal = Some(journal);
        self
    }

    /// Serves `sampler` at `/traces`.
    pub fn with_sampler(mut self, sampler: TailSampler) -> ObsState {
        self.sampler = Some(sampler);
        self
    }

    /// Serves `provider()` at `/status`. The provider must return a JSON
    /// document; it is called once per request, so it always reflects the
    /// live state.
    pub fn with_status(
        mut self,
        provider: impl Fn() -> String + Send + Sync + 'static,
    ) -> ObsState {
        self.status = Some(Arc::new(provider));
        self
    }
}

/// A running exposition server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept thread and releases the
/// port.
pub struct ObsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// starts the accept thread serving `state`.
    pub fn start(addr: &str, state: ObsState) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("uots-obs-serve".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // one bad peer must not take the endpoint down
                        let _ = handle_connection(stream, &state);
                    }
                }
            })?;
        Ok(ObsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept thread and releases the port. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // the accept loop blocks in accept(); poke it awake so it can
        // observe the stop flag
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads the request head (start line + headers) with a bounded size and
/// timeout; returns the raw head text.
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn handle_connection(mut stream: TcpStream, state: &ObsState) -> std::io::Result<()> {
    let head = read_head(&mut stream)?;
    let mut parts = head.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => match &state.registry {
            Some(r) => {
                let text = r.render_prometheus();
                match validate_prometheus_text(&text) {
                    Ok(_) => respond(
                        &mut stream,
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        &text,
                    ),
                    Err(e) => respond(
                        &mut stream,
                        500,
                        "text/plain",
                        &format!("registry rendered an invalid exposition: {e}\n"),
                    ),
                }
            }
            None => respond(&mut stream, 404, "text/plain", "no metrics registry\n"),
        },
        "/status" => match &state.status {
            Some(provider) => respond(&mut stream, 200, "application/json", &provider()),
            None => respond(&mut stream, 404, "text/plain", "no status source\n"),
        },
        "/journal" => match &state.journal {
            Some(j) => {
                let n = query
                    .and_then(|q| {
                        q.split('&')
                            .find_map(|kv| kv.strip_prefix("n="))
                            .and_then(|v| v.parse::<usize>().ok())
                    })
                    .unwrap_or(DEFAULT_JOURNAL_TAIL);
                respond(&mut stream, 200, "application/x-ndjson", &j.export_jsonl(n))
            }
            None => respond(&mut stream, 404, "text/plain", "no event journal\n"),
        },
        "/traces" => match &state.sampler {
            Some(s) => respond(&mut stream, 200, "application/json", &s.export_json()),
            None => respond(&mut stream, 404, "text/plain", "no tail sampler\n"),
        },
        "/" => respond(
            &mut stream,
            200,
            "text/plain",
            "uots observability endpoints:\n\
             /metrics  Prometheus text exposition\n\
             /status   durable ingest health (JSON)\n\
             /journal?n=K  recent operational events (JSON lines)\n\
             /traces   slow-query exemplars (JSON)\n",
        ),
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

/// Default `/journal` tail length when `?n=` is absent.
const DEFAULT_JOURNAL_TAIL: usize = 128;

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Severity;

    /// Minimal blocking HTTP GET against the test server; returns
    /// (status code, body).
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let code: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    fn full_state() -> (ObsState, MetricsRegistry, EventJournal, TailSampler) {
        let registry = MetricsRegistry::new();
        registry.counter("uots_test_total", "Test counter").add(7);
        registry
            .histogram("uots_test_us", "Test histogram")
            .record(42);
        let journal = EventJournal::new(64);
        journal.record(
            Severity::Warn,
            "wal",
            "segment_sealed",
            &[("segment", "wal-3".to_string())],
        );
        let sampler = TailSampler::new(8);
        sampler.observe("probe", 10, true, false, None);
        let state = ObsState::new()
            .with_registry(registry.clone())
            .with_journal(journal.clone())
            .with_sampler(sampler.clone())
            .with_status(|| r#"{"state":"healthy","next_lsn":4}"#.to_string());
        (state, registry, journal, sampler)
    }

    #[test]
    fn serves_all_endpoints_with_valid_payloads() {
        let (state, _r, journal, _s) = full_state();
        let server = ObsServer::start("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();

        let (code, body) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        validate_prometheus_text(&body).expect("served exposition validates");
        assert!(body.contains("uots_test_total"));

        let (code, body) = http_get(addr, "/status");
        assert_eq!(code, 200);
        assert!(body.contains("\"healthy\""));

        let (code, body) = http_get(addr, "/journal?n=10");
        assert_eq!(code, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"segment_sealed\""));

        // n= bounds the tail
        journal.record(Severity::Info, "epoch", "published", &[]);
        let (_, body) = http_get(addr, "/journal?n=1");
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"published\""));

        let (code, body) = http_get(addr, "/traces");
        assert_eq!(code, 200);
        assert!(body.contains("\"kept_best_effort\""));
        assert!(body.contains("\"exemplars\""));

        let (code, body) = http_get(addr, "/");
        assert_eq!(code, 200);
        assert!(body.contains("/metrics"));
    }

    #[test]
    fn missing_components_and_bad_requests_are_4xx() {
        let server = ObsServer::start("127.0.0.1:0", ObsState::new()).expect("bind");
        let addr = server.local_addr();
        for path in ["/metrics", "/status", "/journal", "/traces", "/nope"] {
            let (code, _) = http_get(addr, path);
            assert_eq!(code, 404, "{path}");
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn shutdown_releases_the_port_and_is_idempotent() {
        let (state, ..) = full_state();
        let mut server = ObsServer::start("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();
        assert_eq!(http_get(addr, "/metrics").0, 200);
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // the OS may accept briefly during teardown; a rebind
                // proves the listener is gone
                TcpListener::bind(addr).is_ok()
            },
            "port must be released after shutdown"
        );
    }

    #[test]
    fn metrics_reflect_live_mutation_between_scrapes() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("uots_live_total", "Live counter");
        let server = ObsServer::start(
            "127.0.0.1:0",
            ObsState::new().with_registry(registry.clone()),
        )
        .expect("bind");
        let addr = server.local_addr();
        c.add(1);
        let (_, first) = http_get(addr, "/metrics");
        assert!(first.contains("uots_live_total 1"));
        c.add(41);
        let (_, second) = http_get(addr, "/metrics");
        assert!(second.contains("uots_live_total 42"));
    }
}
