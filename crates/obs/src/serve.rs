//! Live exposition endpoint: a dependency-free HTTP/1.1 server over
//! `std::net::TcpListener` on a plain OS thread — no async runtime.
//!
//! A long-running ingest or query batch becomes inspectable *while it
//! runs*: start an [`ObsServer`] next to the work, hand it clones of the
//! observability handles, and `curl` the process from outside.
//!
//! ## Endpoint contract
//!
//! | path | payload | source |
//! |------|---------|--------|
//! | `GET /metrics` | Prometheus text exposition 0.0.4 | [`MetricsRegistry::render_prometheus`] |
//! | `GET /status`  | JSON health document | caller-installed provider ([`ObsState::with_status`]) |
//! | `GET /journal?n=K` | JSON lines, the `K` (default 128) most recent events | [`EventJournal::export_jsonl`] |
//! | `GET /traces`  | `{"stats":…,"exemplars":[…]}` JSON | [`TailSampler::export_json`] |
//! | `GET /` | plain-text index of the above | — |
//!
//! Every `/metrics` response is re-validated with
//! [`validate_prometheus_text`](crate::validate_prometheus_text) before it
//! leaves the process; a registry that somehow renders an invalid
//! exposition produces a 500, never a silently-malformed 200.
//!
//! The server holds only cheap `Arc` clones of the handles: it never
//! blocks the instrumented hot path, and components the caller did not
//! install answer 404. One connection is served at a time (requests are
//! a few hundred bytes and responses are built in memory, so a scrape is
//! microseconds; an idle keep-alive peer cannot starve others because
//! every response closes the connection and reads carry a timeout).

use crate::journal::EventJournal;
use crate::registry::{validate_prometheus_text, MetricsRegistry};
use crate::sampler::TailSampler;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the `/status` JSON document on demand. Installed by the
/// embedder so the obs crate stays independent of the durable facade's
/// status types.
pub type StatusProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// What an [`ObsServer`] exposes: any subset of the observability
/// handles. Missing components answer 404 on their endpoint.
#[derive(Clone, Default)]
pub struct ObsState {
    registry: Option<MetricsRegistry>,
    journal: Option<EventJournal>,
    sampler: Option<TailSampler>,
    status: Option<StatusProvider>,
}

impl std::fmt::Debug for ObsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsState")
            .field("registry", &self.registry.is_some())
            .field("journal", &self.journal.is_some())
            .field("sampler", &self.sampler.is_some())
            .field("status", &self.status.is_some())
            .finish()
    }
}

impl ObsState {
    /// An empty state; add components with the `with_*` builders.
    pub fn new() -> ObsState {
        ObsState::default()
    }

    /// Serves `registry` at `/metrics`.
    pub fn with_registry(mut self, registry: MetricsRegistry) -> ObsState {
        self.registry = Some(registry);
        self
    }

    /// Serves `journal` at `/journal`.
    pub fn with_journal(mut self, journal: EventJournal) -> ObsState {
        self.journal = Some(journal);
        self
    }

    /// Serves `sampler` at `/traces`.
    pub fn with_sampler(mut self, sampler: TailSampler) -> ObsState {
        self.sampler = Some(sampler);
        self
    }

    /// Serves `provider()` at `/status`. The provider must return a JSON
    /// document; it is called once per request, so it always reflects the
    /// live state.
    pub fn with_status(
        mut self,
        provider: impl Fn() -> String + Send + Sync + 'static,
    ) -> ObsState {
        self.status = Some(Arc::new(provider));
        self
    }
}

/// A running exposition server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept thread and releases the
/// port.
pub struct ObsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// starts the accept thread serving `state`.
    pub fn start(addr: &str, state: ObsState) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("uots-obs-serve".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // one bad peer must not take the endpoint down
                        let _ = handle_connection(stream, &state);
                    }
                }
            })?;
        Ok(ObsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept thread and releases the port. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // the accept loop blocks in accept(); poke it awake so it can
        // observe the stop flag
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maximum accepted request body (requests are JSON documents of at most
/// a few hundred KiB even for large ingest batches).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP/1.1 request: start line plus (for `POST`/`PUT`) the
/// `Content-Length`-framed body. Produced by [`read_request`]; shared by
/// the obs endpoint and the query service built on top of it.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Path component of the target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Request body (empty unless `Content-Length` announced one).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of query parameter `key` (`?key=value`), if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref().and_then(|q| {
            q.split('&')
                .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        })
    }
}

/// Reads one request from `stream` with bounded sizes and timeouts: the
/// head is capped at 8 KiB, the body at [`MAX_BODY_BYTES`], and both
/// reads carry a 2-second timeout so an idle peer cannot wedge the
/// serving thread.
///
/// # Errors
///
/// I/O errors (including timeouts) from the underlying stream, or
/// `InvalidData` for a malformed start line / oversized body.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<HttpRequest> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() >= 8192 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head exceeds 8 KiB",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break buf.len();
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let mut start = lines.next().unwrap_or("").split_whitespace();
    let (method, target) = match (start.next(), start.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed start line",
            ))
        }
    };
    let content_length = lines
        .filter_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .next()
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    // any bytes past the head terminator are the body prefix
    let mut body = buf[head_end.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(HttpRequest {
        method,
        path,
        query,
        body,
    })
}

/// Serves the observability endpoints (`/metrics`, `/status`,
/// `/journal`, `/traces`) for an already-parsed `GET` request. Returns
/// `Ok(true)` when the path was one of them (a response has been
/// written), `Ok(false)` when the path is not an obs endpoint — the
/// embedder then routes it itself. Lets a larger server (the query
/// service) reuse the exposition surface verbatim.
///
/// # Errors
///
/// I/O errors writing the response.
pub fn dispatch_obs(
    stream: &mut TcpStream,
    req: &HttpRequest,
    state: &ObsState,
) -> std::io::Result<bool> {
    let path = req.path.as_str();
    let query = req.query.as_deref();
    match path {
        "/metrics" => match &state.registry {
            Some(r) => {
                let text = r.render_prometheus();
                match validate_prometheus_text(&text) {
                    Ok(_) => respond(
                        stream,
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        &text,
                    )?,
                    Err(e) => respond(
                        stream,
                        500,
                        "text/plain",
                        &format!("registry rendered an invalid exposition: {e}\n"),
                    )?,
                }
            }
            None => respond(stream, 404, "text/plain", "no metrics registry\n")?,
        },
        "/status" => match &state.status {
            Some(provider) => respond(stream, 200, "application/json", &provider())?,
            None => respond(stream, 404, "text/plain", "no status source\n")?,
        },
        "/journal" => match &state.journal {
            Some(j) => {
                let n = query
                    .and_then(|q| {
                        q.split('&')
                            .find_map(|kv| kv.strip_prefix("n="))
                            .and_then(|v| v.parse::<usize>().ok())
                    })
                    .unwrap_or(DEFAULT_JOURNAL_TAIL);
                respond(stream, 200, "application/x-ndjson", &j.export_jsonl(n))?;
            }
            None => respond(stream, 404, "text/plain", "no event journal\n")?,
        },
        "/traces" => match &state.sampler {
            Some(s) => respond(stream, 200, "application/json", &s.export_json())?,
            None => respond(stream, 404, "text/plain", "no tail sampler\n")?,
        },
        _ => return Ok(false),
    }
    Ok(true)
}

fn handle_connection(mut stream: TcpStream, state: &ObsState) -> std::io::Result<()> {
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return respond(&mut stream, 400, "text/plain", "bad request\n")
        }
        Err(e) => return Err(e),
    };
    if req.method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    if dispatch_obs(&mut stream, &req, state)? {
        return Ok(());
    }
    match req.path.as_str() {
        "/" => respond(
            &mut stream,
            200,
            "text/plain",
            "uots observability endpoints:\n\
             /metrics  Prometheus text exposition\n\
             /status   durable ingest health (JSON)\n\
             /journal?n=K  recent operational events (JSON lines)\n\
             /traces   slow-query exemplars (JSON)\n",
        ),
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

/// Default `/journal` tail length when `?n=` is absent.
const DEFAULT_JOURNAL_TAIL: usize = 128;

/// Writes one `Connection: close` HTTP/1.1 response. Public so servers
/// layered over [`read_request`]/[`dispatch_obs`] (the query service)
/// answer with the exact same wire format.
///
/// # Errors
///
/// I/O errors writing to the stream.
pub fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Severity;

    /// Minimal blocking HTTP GET against the test server; returns
    /// (status code, body).
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let code: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    fn full_state() -> (ObsState, MetricsRegistry, EventJournal, TailSampler) {
        let registry = MetricsRegistry::new();
        registry.counter("uots_test_total", "Test counter").add(7);
        registry
            .histogram("uots_test_us", "Test histogram")
            .record(42);
        let journal = EventJournal::new(64);
        journal.record(
            Severity::Warn,
            "wal",
            "segment_sealed",
            &[("segment", "wal-3".to_string())],
        );
        let sampler = TailSampler::new(8);
        sampler.observe("probe", 10, true, false, None);
        let state = ObsState::new()
            .with_registry(registry.clone())
            .with_journal(journal.clone())
            .with_sampler(sampler.clone())
            .with_status(|| r#"{"state":"healthy","next_lsn":4}"#.to_string());
        (state, registry, journal, sampler)
    }

    #[test]
    fn serves_all_endpoints_with_valid_payloads() {
        let (state, _r, journal, _s) = full_state();
        let server = ObsServer::start("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();

        let (code, body) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        validate_prometheus_text(&body).expect("served exposition validates");
        assert!(body.contains("uots_test_total"));

        let (code, body) = http_get(addr, "/status");
        assert_eq!(code, 200);
        assert!(body.contains("\"healthy\""));

        let (code, body) = http_get(addr, "/journal?n=10");
        assert_eq!(code, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"segment_sealed\""));

        // n= bounds the tail
        journal.record(Severity::Info, "epoch", "published", &[]);
        let (_, body) = http_get(addr, "/journal?n=1");
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"published\""));

        let (code, body) = http_get(addr, "/traces");
        assert_eq!(code, 200);
        assert!(body.contains("\"kept_best_effort\""));
        assert!(body.contains("\"exemplars\""));

        let (code, body) = http_get(addr, "/");
        assert_eq!(code, 200);
        assert!(body.contains("/metrics"));
    }

    #[test]
    fn missing_components_and_bad_requests_are_4xx() {
        let server = ObsServer::start("127.0.0.1:0", ObsState::new()).expect("bind");
        let addr = server.local_addr();
        for path in ["/metrics", "/status", "/journal", "/traces", "/nope"] {
            let (code, _) = http_get(addr, path);
            assert_eq!(code, 404, "{path}");
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn shutdown_releases_the_port_and_is_idempotent() {
        let (state, ..) = full_state();
        let mut server = ObsServer::start("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();
        assert_eq!(http_get(addr, "/metrics").0, 200);
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // the OS may accept briefly during teardown; a rebind
                // proves the listener is gone
                TcpListener::bind(addr).is_ok()
            },
            "port must be released after shutdown"
        );
    }

    #[test]
    fn metrics_reflect_live_mutation_between_scrapes() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("uots_live_total", "Live counter");
        let server = ObsServer::start(
            "127.0.0.1:0",
            ObsState::new().with_registry(registry.clone()),
        )
        .expect("bind");
        let addr = server.local_addr();
        c.add(1);
        let (_, first) = http_get(addr, "/metrics");
        assert!(first.contains("uots_live_total 1"));
        c.add(41);
        let (_, second) = http_get(addr, "/metrics");
        assert!(second.contains("uots_live_total 42"));
    }
}
