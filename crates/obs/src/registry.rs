//! A registry of named counters, gauges and histograms with Prometheus-text
//! and JSON exposition.
//!
//! [`MetricsRegistry`] is `Clone` (cheap `Arc` handle) so engines, workers
//! and observers can share one registry. Metric handles ([`Counter`],
//! [`Gauge`], [`Histogram`]) are themselves `Arc`-backed: registering the
//! same family name + label set twice returns a handle to the *same*
//! underlying metric, and updates through a handle never take the registry
//! lock.

use crate::hist::LogHistogram;
use crate::phase::PhaseNanos;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Quantiles exported for every histogram, as `(label, q)` pairs.
/// `quantile="1"` is the exact observed maximum.
const EXPORT_QUANTILES: [(&str, f64); 5] = [
    ("0.5", 0.5),
    ("0.9", 0.9),
    ("0.95", 0.95),
    ("0.99", 0.99),
    ("1", 1.0),
];

/// Monotonically increasing `u64` metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, in-flight counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared handle to a [`LogHistogram`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        lock_ok(&self.0).record(v);
    }

    /// Records `n` observations of `v`.
    pub fn record_n(&self, v: u64, n: u64) {
        lock_ok(&self.0).record_n(v, n);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> LogHistogram {
        lock_ok(&self.0).clone()
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: metrics must
/// stay readable after a panicking worker (core::parallel isolates panics).
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "summary",
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Sample {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<Sample>,
}

/// A shared, clonable registry of metric families. See the
/// [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Family>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered as a different metric kind,
    /// or if a name/label is not a valid Prometheus identifier.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, || {
            Metric::Counter(Counter::default())
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind enforced by register"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics on kind mismatch or invalid identifiers (see
    /// [`counter_with`](Self::counter_with)).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, || {
            Metric::Gauge(Gauge::default())
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind enforced by register"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics on kind mismatch or invalid identifiers (see
    /// [`counter_with`](Self::counter_with)).
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, Kind::Histogram, labels, || {
            Metric::Histogram(Histogram::default())
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind enforced by register"),
        }
    }

    /// Records a per-phase time breakdown into the `name` histogram family,
    /// one observation per phase that accumulated time, labeled
    /// `phase="<name>"`. Phases with zero time are skipped so idle phases
    /// do not drag quantiles to zero.
    pub fn observe_phases(&self, name: &str, help: &str, phases: &PhaseNanos) {
        for (phase, ns) in phases.iter() {
            if ns > 0 {
                self.histogram_with(name, help, &[("phase", phase.as_str())])
                    .record(ns);
            }
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(
            valid_metric_name(name),
            "invalid metric name `{name}` (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        for (k, _) in labels {
            assert!(
                valid_label_name(k),
                "invalid label name `{k}` (want [a-zA-Z_][a-zA-Z0-9_]*)"
            );
        }
        let mut fams = lock_ok(&self.inner);
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric `{name}` already registered as a {}",
                    f.kind.as_str()
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    samples: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = fam.samples.iter().find(|s| label_eq(&s.labels, labels)) {
            return s.metric.clone();
        }
        let metric = make();
        fam.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4). Histograms render as summaries with
    /// `quantile="0.5|0.9|0.95|0.99|1"` sample lines plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let fams = lock_ok(&self.inner);
        let mut out = String::new();
        for f in fams.iter() {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                f.name,
                escape_help(&f.help),
                f.name,
                f.kind.as_str()
            ));
            for s in &f.samples {
                match &s.metric {
                    Metric::Counter(c) => {
                        out.push_str(&sample_line(&f.name, &s.labels, None, c.get() as f64));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&sample_line(&f.name, &s.labels, None, g.get() as f64));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        for (label, q) in EXPORT_QUANTILES {
                            // a never-hit histogram has no quantiles; the
                            // Prometheus convention for empty summaries is
                            // NaN, not a fabricated 0 (which would read as
                            // a real "p99 = 0" to dashboards and alerts)
                            let v = if snap.count() == 0 {
                                f64::NAN
                            } else {
                                snap.quantile(q) as f64
                            };
                            out.push_str(&sample_line(
                                &f.name,
                                &s.labels,
                                Some(("quantile", label)),
                                v,
                            ));
                        }
                        let sum_name = format!("{}_sum", f.name);
                        let count_name = format!("{}_count", f.name);
                        out.push_str(&sample_line(&sum_name, &s.labels, None, snap.sum() as f64));
                        out.push_str(&sample_line(
                            &count_name,
                            &s.labels,
                            None,
                            snap.count() as f64,
                        ));
                    }
                }
            }
        }
        out
    }

    /// Captures a serializable point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let fams = lock_ok(&self.inner);
        let mut snap = RegistrySnapshot::default();
        for f in fams.iter() {
            for s in &f.samples {
                let labels: Vec<LabelPair> = s
                    .labels
                    .iter()
                    .map(|(k, v)| LabelPair {
                        name: k.clone(),
                        value: v.clone(),
                    })
                    .collect();
                match &s.metric {
                    Metric::Counter(c) => snap.counters.push(CounterSnapshot {
                        name: f.name.clone(),
                        labels,
                        value: c.get(),
                    }),
                    Metric::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                        name: f.name.clone(),
                        labels,
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => {
                        let hist = h.snapshot();
                        // quantiles of a never-hit histogram are undefined:
                        // export `null`, never a fabricated 0
                        let q = |p: f64| (hist.count() > 0).then(|| hist.quantile(p));
                        snap.histograms.push(HistogramSnapshot {
                            name: f.name.clone(),
                            labels,
                            count: hist.count(),
                            sum: hist.sum() as f64,
                            min: hist.min(),
                            max: hist.max(),
                            mean: hist.mean(),
                            p50: q(0.5),
                            p90: q(0.9),
                            p95: q(0.95),
                            p99: q(0.99),
                        })
                    }
                }
            }
        }
        snap
    }

    /// Renders a JSON snapshot (see [`RegistrySnapshot`]).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot())
            .expect("registry snapshot serialization is infallible")
    }
}

/// One label on a snapshot sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelPair {
    /// Label name.
    pub name: String,
    /// Label value.
    pub value: String,
}

/// Snapshot of one counter sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<LabelPair>,
    /// Counter value.
    pub value: u64,
}

/// Snapshot of one gauge sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<LabelPair>,
    /// Gauge value.
    pub value: i64,
}

/// Snapshot of one histogram sample with its headline quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<LabelPair>,
    /// Observation count.
    pub count: u64,
    /// Sum of observations (lossy `f64`, matching Prometheus exposition).
    pub sum: f64,
    /// Exact minimum observation.
    pub min: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (≤12.5% relative error); `None` when no
    /// observation was ever recorded — quantiles of an empty distribution
    /// are undefined, and exporting 0 would be indistinguishable from a
    /// real measurement of 0.
    pub p50: Option<u64>,
    /// 90th percentile (≤12.5% relative error); `None` when empty.
    pub p90: Option<u64>,
    /// 95th percentile (≤12.5% relative error); `None` when empty.
    pub p95: Option<u64>,
    /// 99th percentile (≤12.5% relative error); `None` when empty.
    pub p99: Option<u64>,
}

/// Point-in-time snapshot of a whole [`MetricsRegistry`], serializable to
/// JSON for `--metrics-out`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counter samples, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauge samples, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histogram samples, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Looks up a histogram sample by family name and (exact) label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| {
            h.name == name
                && h.labels.len() == labels.len()
                && h.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|(a, (k, v))| a.name == *k && a.value == *v)
        })
    }

    /// Looks up a counter sample by family name and (exact) label set.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| {
                c.name == name
                    && c.labels.len() == labels.len()
                    && c.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|(a, (k, v))| a.name == *k && a.value == *v)
            })
            .map(|c| c.value)
    }

    /// Looks up a gauge sample by family name and (exact) label set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| {
                g.name == name
                    && g.labels.len() == labels.len()
                    && g.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|(a, (k, v))| a.name == *k && a.value == *v)
            })
            .map(|g| g.value)
    }
}

fn label_eq(stored: &[(String, String)], wanted: &[(&str, &str)]) -> bool {
    stored.len() == wanted.len()
        && stored
            .iter()
            .zip(wanted.iter())
            .all(|((sk, sv), (wk, wv))| sk == wk && sv == wv)
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats one exposition sample line, merging the sample's labels with an
/// optional extra (quantile) label.
fn sample_line(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: f64,
) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    let labelset = if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    };
    format!("{name}{labelset} {}\n", fmt_value(value))
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// Outcome of a successful [`validate_prometheus_text`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Number of `# TYPE`-declared metric families.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
}

/// Validates a Prometheus text exposition: every line must be a well-formed
/// comment/`HELP`/`TYPE` line or a `name{labels} value [timestamp]` sample;
/// `TYPE`/`HELP` may appear at most once per family; no two samples may
/// share the same name *and* label set. Returns family/sample counts on
/// success, or a message naming the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<ValidationSummary, String> {
    let mut typed: Vec<String> = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    let mut seen_samples: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid metric name `{name}`"));
                }
                let kind = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE `{name}` without a kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric kind `{kind}`"));
                }
                if typed.iter().any(|t| t == name) {
                    return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
                }
                typed.push(name.to_owned());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| format!("line {lineno}: HELP without a metric name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid metric name `{name}`"));
                }
                if helped.iter().any(|h| h == name) {
                    return Err(format!("line {lineno}: duplicate HELP for `{name}`"));
                }
                helped.push(name.to_owned());
            }
            // other comment lines are fine
            continue;
        }
        let key = parse_sample_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if seen_samples.contains(&key) {
            return Err(format!("line {lineno}: duplicate sample `{key}`"));
        }
        seen_samples.push(key);
    }
    Ok(ValidationSummary {
        families: typed.len(),
        samples: seen_samples.len(),
    })
}

/// Parses one sample line, returning its identity key `name{labels}`.
fn parse_sample_line(line: &str) -> Result<String, String> {
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => line.split_at(i),
        None => return Err(format!("sample `{line}` has no value")),
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name `{name_part}`"));
    }
    let (labelset, value_part) = if let Some(after) = rest.strip_prefix('{') {
        let close = after
            .find('}')
            .ok_or_else(|| format!("unterminated label set in `{line}`"))?;
        let inner = &after[..close];
        // validate each label pair
        if !inner.is_empty() {
            for pair in split_label_pairs(inner)? {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label `{pair}` missing `=`"))?;
                if !valid_label_name(k) {
                    return Err(format!("invalid label name `{k}`"));
                }
                if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                    return Err(format!("label value `{v}` must be double-quoted"));
                }
            }
        }
        (format!("{{{inner}}}"), &after[close + 1..])
    } else {
        (String::new(), rest)
    };
    let mut fields = value_part.split_whitespace();
    let value = fields
        .next()
        .ok_or_else(|| format!("sample `{line}` has no value"))?;
    let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !value_ok {
        return Err(format!("unparseable sample value `{value}`"));
    }
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("unparseable timestamp `{ts}`"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage on sample `{line}`"));
    }
    Ok(format!("{name_part}{labelset}"))
}

/// Splits `k="v",k2="v2"` label text on commas that are not inside quotes.
fn split_label_pairs(inner: &str) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in label set `{inner}`"));
    }
    let tail = &inner[start..];
    if !tail.is_empty() {
        out.push(tail);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    #[test]
    fn handles_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("uots_test_total", "a counter");
        let reg2 = reg.clone();
        let c2 = reg2.counter("uots_test_total", "a counter");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        assert_eq!(c2.get(), 4);

        let g = reg.gauge_with("uots_depth", "queue depth", &[("worker", "0")]);
        g.set(5);
        g.dec();
        assert_eq!(
            reg2.gauge_with("uots_depth", "queue depth", &[("worker", "0")])
                .get(),
            4
        );
        // different labels -> different sample
        let g1 = reg.gauge_with("uots_depth", "queue depth", &[("worker", "1")]);
        assert_eq!(g1.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("uots_thing", "x");
        reg.gauge("uots_thing", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        MetricsRegistry::new().counter("uots thing", "x");
    }

    #[test]
    fn prometheus_export_has_correct_quantiles_and_validates() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with(
            "uots_query_phase_nanoseconds",
            "per-phase query time",
            &[("phase", "network_expansion")],
        );
        // known uniform distribution 1..=10_000: pX = X * 100
        for v in 1..=10_000u64 {
            h.record(v);
        }
        reg.counter("uots_queries_total", "queries run").add(7);

        let snap = reg.snapshot();
        let hs = snap
            .histogram(
                "uots_query_phase_nanoseconds",
                &[("phase", "network_expansion")],
            )
            .unwrap();
        assert_eq!(hs.count, 10_000);
        for (got, truth) in [(hs.p50, 5_000.0), (hs.p95, 9_500.0), (hs.p99, 9_900.0)] {
            let got = got.expect("non-empty histogram has quantiles");
            let rel = (got as f64 - truth).abs() / truth;
            assert!(rel <= 0.125, "got {got}, truth {truth}");
        }
        assert_eq!(hs.max, 10_000);
        assert_eq!(snap.counter("uots_queries_total", &[]), Some(7));

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE uots_query_phase_nanoseconds summary"));
        assert!(text.contains("phase=\"network_expansion\",quantile=\"0.99\""));
        assert!(
            text.contains("uots_query_phase_nanoseconds_count{phase=\"network_expansion\"} 10000")
        );
        assert!(text.contains("uots_queries_total 7"));
        let summary = validate_prometheus_text(&text).expect("export must validate");
        assert_eq!(summary.families, 2);
        // 5 quantiles + sum + count + 1 counter sample
        assert_eq!(summary.samples, 8);

        let json = reg.render_json();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn never_hit_histogram_exports_no_misleading_quantiles() {
        let reg = MetricsRegistry::new();
        reg.histogram("uots_recovery_ns", "recovery time"); // registered, never recorded
        reg.histogram("uots_busy_ns", "busy one").record(0); // a REAL zero observation

        // JSON: empty → null quantiles; a real 0 observation → Some(0)
        let snap = reg.snapshot();
        let empty = snap.histogram("uots_recovery_ns", &[]).unwrap();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p50, None);
        assert_eq!(empty.p99, None);
        let busy = snap.histogram("uots_busy_ns", &[]).unwrap();
        assert_eq!(busy.p99, Some(0), "a recorded zero is a value, not absence");

        // Prometheus: empty summary quantiles are NaN, never 0
        let text = reg.render_prometheus();
        assert!(
            text.contains("uots_recovery_ns{quantile=\"0.99\"} NaN"),
            "{text}"
        );
        assert!(text.contains("uots_recovery_ns_count 0"), "{text}");
        assert!(text.contains("uots_busy_ns{quantile=\"0.99\"} 0"), "{text}");
        validate_prometheus_text(&text).expect("NaN quantiles must validate");

        // the JSON round-trips through serde with the nulls intact
        let back: RegistrySnapshot = serde_json::from_str(&reg.render_json()).unwrap();
        assert_eq!(back.histogram("uots_recovery_ns", &[]).unwrap().p99, None);
    }

    #[test]
    fn observe_phases_records_only_active_phases() {
        let reg = MetricsRegistry::new();
        let mut pn = PhaseNanos::ZERO;
        pn.add(Phase::NetworkExpansion, 1_000);
        pn.add(Phase::TextFilter, 250);
        reg.observe_phases("uots_phase_ns", "phase time", &pn);
        let snap = reg.snapshot();
        assert!(snap
            .histogram("uots_phase_ns", &[("phase", "network_expansion")])
            .is_some());
        assert!(snap
            .histogram("uots_phase_ns", &[("phase", "candidate_refine")])
            .is_none());
    }

    #[test]
    fn validator_accepts_good_and_rejects_bad() {
        let good = "# HELP a_total help text\n# TYPE a_total counter\na_total 1\n\
                    # TYPE b gauge\nb{x=\"1\",y=\"two words\"} -3.5\nb{x=\"2\"} +Inf\n";
        let s = validate_prometheus_text(good).unwrap();
        assert_eq!(s.families, 2);
        assert_eq!(s.samples, 3);

        // duplicate TYPE
        assert!(validate_prometheus_text("# TYPE a counter\n# TYPE a counter\n").is_err());
        // duplicate sample (same name + labels)
        assert!(validate_prometheus_text("a 1\na 2\n").is_err());
        // unquoted label value
        assert!(validate_prometheus_text("a{x=1} 2\n").is_err());
        // bad value
        assert!(validate_prometheus_text("a{x=\"1\"} fast\n").is_err());
        // bad kind
        assert!(validate_prometheus_text("# TYPE a speedometer\n").is_err());
        // unterminated label set
        assert!(validate_prometheus_text("a{x=\"1\" 2\n").is_err());
        // label values containing commas must not split
        assert!(validate_prometheus_text("a{x=\"1,2\"} 3\n").is_ok());
    }

    #[test]
    fn escaping_survives_validation() {
        let reg = MetricsRegistry::new();
        reg.counter_with(
            "uots_weird",
            "help with \\ and\nnewline",
            &[("q", "a\"b,c\\d")],
        )
        .inc();
        let text = reg.render_prometheus();
        validate_prometheus_text(&text).expect("escaped export must validate");
    }
}
