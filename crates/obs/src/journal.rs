//! Bounded, thread-safe journal of structured operational events.
//!
//! Metrics answer *how much*; the journal answers *what happened when*.
//! Every durability-relevant state change — a WAL segment sealed after a
//! failed fsync, a retry budget exhausted, an ingest degrading to
//! read-only, a checkpoint landing, a file moved to quarantine — lands
//! here as one [`JournalEvent`]: timestamp, severity, component, name,
//! and free-form key/value fields.
//!
//! The journal is a fixed-capacity ring: recording is O(1), never blocks
//! on I/O, and when the ring wraps the oldest events are dropped and
//! *counted* ([`EventJournal::dropped`]), so an operator reading the tail
//! always knows whether history is missing. An [`EventJournal`] handle is
//! an `Arc` around the ring — clone it freely into every subsystem; all
//! clones feed the same ring.
//!
//! Export is JSON lines ([`EventJournal::export_jsonl`]): one event per
//! line, so `tail`/`grep`/`jq` work on a live capture, and the
//! `/journal` endpoint of [`serve`](crate::serve) can stream the most
//! recent `K` events without holding the ring locked during the write.

use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

/// How loud a [`JournalEvent`] is. Severities are advisory — the journal
/// never filters by them — but they let an operator `grep '"error"'` a
/// capture during an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine operational fact (rotation, publish, checkpoint).
    Info,
    /// Something degraded or was repaired, but service continues.
    Warn,
    /// A failure with operator-visible consequences.
    Error,
}

impl Severity {
    /// Lowercase wire name (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the wire name back; inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn serialize(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Severity::parse(s).ok_or_else(|| DeError::unknown_variant(s)),
            _ => Err(DeError::unknown_variant("severity must be a string")),
        }
    }
}

/// One structured operational event.
///
/// Serializes to a flat JSON object with the fields inlined as a nested
/// object, e.g.:
///
/// ```json
/// {"seq":17,"unix_ms":1754700000123,"severity":"warn","component":"wal",
///  "name":"segment_sealed","fields":{"segment":"wal-00000000000000000004",
///  "truncate_at":"4096"}}
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Monotonic sequence number, assigned at record time. Gaps in a
    /// journal capture mean the ring wrapped in between.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Event severity.
    pub severity: Severity,
    /// Emitting subsystem (`"wal"`, `"durable"`, `"epoch"`,
    /// `"distcache"`, `"scrub"`, ...).
    pub component: String,
    /// Event name within the component (`"fsync_failure"`,
    /// `"segment_sealed"`, `"degraded"`, ...).
    pub name: String,
    /// Free-form key/value detail, in insertion order.
    pub fields: Vec<(String, String)>,
}

impl Serialize for JournalEvent {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("seq".to_string(), Content::U64(self.seq)),
            ("unix_ms".to_string(), Content::U64(self.unix_ms)),
            ("severity".to_string(), self.severity.serialize()),
            (
                "component".to_string(),
                Content::Str(self.component.clone()),
            ),
            ("name".to_string(), Content::Str(self.name.clone())),
            (
                "fields".to_string(),
                Content::Map(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Content::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for JournalEvent {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let str_of = |c: &Content, what: &str| -> Result<String, DeError> {
            match c {
                Content::Str(s) => Ok(s.clone()),
                _ => Err(DeError::unknown_variant(what)),
            }
        };
        let u64_of = |c: &Content, what: &str| -> Result<u64, DeError> {
            match c {
                Content::U64(v) => Ok(*v),
                Content::I64(v) if *v >= 0 => Ok(*v as u64),
                _ => Err(DeError::unknown_variant(what)),
            }
        };
        let get = |key: &str| -> Result<&Content, DeError> {
            content
                .get(key)
                .ok_or_else(|| DeError::unknown_variant(key))
        };
        let mut fields = Vec::new();
        if let Some(map) = get("fields")?.as_map() {
            for (k, v) in map {
                fields.push((k.clone(), str_of(v, "field value")?));
            }
        }
        Ok(JournalEvent {
            seq: u64_of(get("seq")?, "seq")?,
            unix_ms: u64_of(get("unix_ms")?, "unix_ms")?,
            severity: Severity::deserialize(get("severity")?)?,
            component: str_of(get("component")?, "component")?,
            name: str_of(get("name")?, "name")?,
            fields,
        })
    }
}

struct Inner {
    ring: Mutex<VecDeque<JournalEvent>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

/// A bounded, thread-safe ring of [`JournalEvent`]s. Cloning is cheap
/// (`Arc`); all clones share one ring. See the [module docs](self).
#[derive(Clone)]
pub struct EventJournal {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.inner.capacity)
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Default ring capacity: generous enough to hold the full causal chain
/// of any single incident, small enough to be memory-irrelevant.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// Creates a journal holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventJournal {
        let capacity = capacity.max(1);
        EventJournal {
            inner: Arc::new(Inner {
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                next_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// A poisoned ring mutex only means another thread panicked mid-push;
    /// the deque itself is never left structurally broken, so recording
    /// and reading continue (same policy as the metrics registry).
    fn lock_ring(&self) -> MutexGuard<'_, VecDeque<JournalEvent>> {
        match self.inner.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records one event. `fields` are `(key, value)` detail pairs;
    /// values are plain strings (format numbers with `to_string()` — the
    /// journal favors greppability over typed payloads).
    pub fn record(
        &self,
        severity: Severity,
        component: &str,
        name: &str,
        fields: &[(&str, String)],
    ) {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let event = JournalEvent {
            seq,
            unix_ms,
            severity,
            component: component.to_string(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        };
        let mut ring = self.lock_ring();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// [`record`](Self::record) at [`Severity::Info`].
    pub fn info(&self, component: &str, name: &str, fields: &[(&str, String)]) {
        self.record(Severity::Info, component, name, fields);
    }

    /// [`record`](Self::record) at [`Severity::Warn`].
    pub fn warn(&self, component: &str, name: &str, fields: &[(&str, String)]) {
        self.record(Severity::Warn, component, name, fields);
    }

    /// [`record`](Self::record) at [`Severity::Error`].
    pub fn error(&self, component: &str, name: &str, fields: &[(&str, String)]) {
        self.record(Severity::Error, component, name, fields);
    }

    /// The most recent `n` events, oldest first. `n >= len()` returns
    /// everything currently retained.
    pub fn recent(&self, n: usize) -> Vec<JournalEvent> {
        let ring = self.lock_ring();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.lock_ring().len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }

    /// Events evicted because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Renders the most recent `n` events as JSON lines (one event per
    /// line, oldest first). Serialization happens on a snapshot, outside
    /// the ring lock.
    pub fn export_jsonl(&self, n: usize) -> String {
        let events = self.recent(n);
        let mut out = String::new();
        for e in &events {
            match serde_json::to_string(e) {
                Ok(line) => {
                    out.push_str(&line);
                    out.push('\n');
                }
                Err(_) => {
                    // a journal event is a tree of strings and integers;
                    // serialization cannot fail, but never panic in an
                    // observability path
                    debug_assert!(false, "journal event failed to serialize");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let j = EventJournal::new(16);
        j.info("wal", "rotated", &[("segment", "wal-3".to_string())]);
        j.warn("wal", "sealed", &[]);
        j.error(
            "durable",
            "degraded",
            &[("reason", "disk gone".to_string())],
        );
        let events = j.recent(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "rotated");
        assert_eq!(events[0].severity, Severity::Info);
        assert_eq!(events[2].component, "durable");
        assert_eq!(events[2].fields[0].1, "disk gone");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let j = EventJournal::new(4);
        for i in 0..10 {
            j.info("t", "e", &[("i", i.to_string())]);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        assert_eq!(j.recorded(), 10);
        let events = j.recent(100);
        // the survivors are the newest four, in order
        assert_eq!(events[0].fields[0].1, "6");
        assert_eq!(events[3].fields[0].1, "9");
    }

    #[test]
    fn recent_limits_to_n_newest() {
        let j = EventJournal::new(16);
        for i in 0..8 {
            j.info("t", "e", &[("i", i.to_string())]);
        }
        let last2 = j.recent(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].fields[0].1, "6");
        assert_eq!(last2[1].fields[0].1, "7");
    }

    #[test]
    fn jsonl_round_trips_line_by_line() {
        let j = EventJournal::new(8);
        j.warn(
            "scrub",
            "quarantined",
            &[
                ("file", "ckpt-7".to_string()),
                ("reason", "crc \"mismatch\"\n".to_string()),
            ],
        );
        j.info("epoch", "published", &[("epoch", "3".to_string())]);
        let jsonl = j.export_jsonl(10);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, original) in lines.iter().zip(j.recent(10)) {
            let back: JournalEvent = serde_json::from_str(line).expect("each line parses");
            assert_eq!(back, original);
        }
    }

    #[test]
    fn clones_share_one_ring() {
        let j = EventJournal::new(8);
        let j2 = j.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..100 {
                    j2.info("a", "x", &[]);
                }
            });
            for _ in 0..100 {
                j.info("b", "y", &[]);
            }
        });
        assert_eq!(j.recorded(), 200);
        assert_eq!(j.len() as u64 + j.dropped(), 200);
    }
}
