//! Log-bucketed latency/size histogram (HDR-histogram style, in-repo).
//!
//! Values are bucketed on a logarithmic scale with 8 linear sub-buckets per
//! power of two, which bounds the relative quantile error at 1/8 = 12.5%
//! while keeping the whole `u64` range representable in 496 fixed buckets.
//! Recording is O(1) (a `leading_zeros` and two adds), merging is slot-wise,
//! and the exact `min`/`max`/`sum` are tracked alongside the buckets so
//! extreme quantiles are exact.

use serde::{Content, DeError, Deserialize, Serialize};

/// log2 of the number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power of two.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: values `0..8` get exact buckets, then each of the
/// `h = 3..=63` exponent ranges contributes 8 sub-buckets.
const NUM_BUCKETS: usize = (SUB as usize) + 61 * (SUB as usize);

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // v >= 8 so h >= 3
        let sub = (v >> (h - SUB_BITS)) & (SUB - 1);
        ((h - 2) as usize) * (SUB as usize) + sub as usize
    }
}

/// Largest value mapping to bucket `idx` (the value reported for quantiles
/// that land in this bucket, before clamping to the exact min/max).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let h = (idx / SUB as usize + 2) as u32;
        let sub = (idx % SUB as usize) as u64;
        let width = 1u64 << (h - SUB_BITS);
        // rearranged as (2^h - 1) + (sub+1)*width so the top bucket
        // (h = 63, sub = 7) lands exactly on u64::MAX without overflow
        ((1u64 << h) - 1) + (sub + 1) * width
    }
}

/// Fixed-memory log-bucketed histogram over `u64` values.
///
/// ```
/// use uots_obs::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=563).contains(&p50)); // within 12.5% of 500
/// assert_eq!(h.quantile(1.0), 1000);   // max is exact
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    /// Running sum. `u128` so ~1.8e19 worth of nanoseconds cannot overflow it.
    sum: u128,
    min: u64,
    max: u64,
}

/// Wire form of [`LogHistogram`]: the workspace serde has no `u128`
/// support, so the sum travels as two `u64` halves.
#[derive(Serialize, Deserialize)]
struct HistWire {
    counts: Vec<u64>,
    count: u64,
    sum_hi: u64,
    sum_lo: u64,
    min: u64,
    max: u64,
}

impl Serialize for LogHistogram {
    fn serialize(&self) -> Content {
        HistWire {
            counts: self.counts.clone(),
            count: self.count,
            sum_hi: (self.sum >> 64) as u64,
            sum_lo: self.sum as u64,
            min: self.min,
            max: self.max,
        }
        .serialize()
    }
}

impl Deserialize for LogHistogram {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let w = HistWire::deserialize(c)?;
        if w.counts.len() != NUM_BUCKETS {
            return Err(DeError::custom(format!(
                "histogram wants {NUM_BUCKETS} buckets, got {}",
                w.counts.len()
            )));
        }
        Ok(LogHistogram {
            counts: w.counts,
            count: w.count,
            sum: ((w.sum_hi as u128) << 64) | w.sum_lo as u128,
            min: w.min,
            max: w.max,
        })
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram. Allocates its (fixed-size) bucket array.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at quantile `q` (clamped to `[0, 1]`): the smallest bucket
    /// upper bound `b` such that at least `ceil(q * count)` observations are
    /// `<= b`, clamped into the exact observed `[min, max]` range. Relative
    /// error is at most 12.5%; `q = 0` returns the exact min and `q = 1` the
    /// exact max.
    ///
    /// **Empty histograms return the sentinel 0** — quantiles of an empty
    /// distribution are undefined, and callers that need to distinguish
    /// "never hit" from "observed 0" must check [`is_empty`](Self::is_empty)
    /// (the registry exporters do: Prometheus text emits `NaN` quantile
    /// samples and the JSON snapshot emits `null`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank in 1..=count
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` (slot-wise; min/max/sum stay exact).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_self_consistent() {
        // every value maps to a bucket whose upper bound is >= the value,
        // and bucket upper bounds map back to their own bucket
        let probes: Vec<u64> = (0..2048)
            .chain((3..64).flat_map(|h| {
                let base = 1u64 << h;
                [base - 1, base, base + base / 8, base + base / 2]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut last = 0usize;
        let mut last_v = 0u64;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(bucket_upper(idx) >= v, "v={v} upper={}", bucket_upper(idx));
            assert_eq!(bucket_index(bucket_upper(idx)), idx, "v={v}");
            if v >= last_v {
                assert!(idx >= last, "monotonicity broke at v={v}");
            }
            last = idx;
            last_v = v;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for v in 0..8 {
            // each small value sits in its own exact bucket
            let q = (v + 1) as f64 / 8.0;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn quantiles_of_known_uniform_distribution() {
        // 1..=10_000 uniformly: true pX = X * 100
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), (10_000u128 * 10_001) / 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, truth) in [
            (0.5, 5_000.0),
            (0.9, 9_000.0),
            (0.95, 9_500.0),
            (0.99, 9_900.0),
        ] {
            let got = h.quantile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 0.125, "q={q}: got {got}, truth {truth}, rel {rel}");
            // the estimate is an upper bound of its bucket, so it never
            // undershoots the true quantile
            assert!(got >= truth - 1.0, "q={q} undershot: {got} < {truth}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn known_skewed_distribution() {
        // 99 fast ops at 100ns, 1 slow op at 1_000_000ns
        let mut h = LogHistogram::new();
        h.record_n(100, 99);
        h.record(1_000_000);
        assert!(h.quantile(0.5) >= 100 && h.quantile(0.5) <= 112);
        assert!(h.quantile(0.95) >= 100 && h.quantile(0.95) <= 112);
        assert_eq!(h.quantile(0.999), 1_000_000); // clamped to exact max
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert!((h.mean() - (99.0 * 100.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        // the documented empty sentinel: 0 at EVERY quantile, including the
        // out-of-range values callers might clamp in
        for q in [-1.0, 0.0, 0.5, 0.9, 0.99, 1.0, 2.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in 1..=500u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        for v in 1..=500u64 {
            b.record(v * 7 + 1);
            c.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = LogHistogram::new();
        h.record_n(42, 10);
        h.record(9_999);
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
