//! Textual similarity measures between keyword sets.
//!
//! The UOTS textual similarity is the Jaccard coefficient between the query
//! preference and the trajectory's textual attributes, which the linear
//! combination in `uots-core` weighs against the spatial similarity. The
//! alternative measures here (Dice, cosine, overlap, IDF-weighted Jaccard)
//! are provided for sensitivity analysis — they share the `[0, 1]` range and
//! symmetry that the UOTS bounds require.

use crate::{KeywordId, KeywordSet};
use serde::{Deserialize, Serialize};

/// Inverse-document-frequency weights for a keyword corpus, used by
/// [`TextSimilarity::WeightedJaccard`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdfWeights {
    weights: Vec<f64>,
}

impl IdfWeights {
    /// Computes smoothed IDF weights `ln(1 + N / (1 + df))` for a corpus of
    /// keyword sets over a vocabulary of `vocab_len` keywords.
    pub fn from_corpus<'a>(
        corpus: impl IntoIterator<Item = &'a KeywordSet>,
        vocab_len: usize,
    ) -> Self {
        let mut df = vec![0usize; vocab_len];
        let mut n = 0usize;
        for set in corpus {
            n += 1;
            for id in set.iter() {
                if id.index() < vocab_len {
                    df[id.index()] += 1;
                }
            }
        }
        let weights = df
            .iter()
            .map(|&d| (1.0 + n as f64 / (1.0 + d as f64)).ln())
            .collect();
        IdfWeights { weights }
    }

    /// The weight of keyword `id` (0 for foreign ids).
    #[inline]
    pub fn weight(&self, id: KeywordId) -> f64 {
        self.weights.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Sum of weights over a set.
    pub fn sum(&self, set: &KeywordSet) -> f64 {
        set.iter().map(|id| self.weight(id)).sum()
    }
}

/// The textual similarity measure to use. All variants are symmetric and map
/// into `[0, 1]`, with `1` exactly when both sets are equal and non-empty
/// (except `Overlap`, which is also `1` for subset relations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TextSimilarity {
    /// `|A ∩ B| / |A ∪ B|` — the UOTS paper's measure (default).
    #[default]
    Jaccard,
    /// `2|A ∩ B| / (|A| + |B|)`.
    Dice,
    /// `|A ∩ B| / sqrt(|A| · |B|)` — set cosine.
    Cosine,
    /// `|A ∩ B| / min(|A|, |B|)`.
    Overlap,
}

impl TextSimilarity {
    /// Similarity between two keyword sets.
    ///
    /// Conventions for empty sets: two empty sets are fully similar (`1`);
    /// one empty and one non-empty set are dissimilar (`0`). A query with no
    /// keywords therefore matches untagged trajectories, which composes
    /// correctly with the λ-combination (λ = 1 disables the channel anyway).
    pub fn similarity(&self, a: &KeywordSet, b: &KeywordSet) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        self.from_counts(a.intersection_len(b), a.len(), b.len())
    }

    /// Similarity from precomputed counts `(|A ∩ B|, |A|, |B|)`.
    ///
    /// This is the arithmetic core of [`similarity`](Self::similarity):
    /// alternative set representations (bitset blocks, galloping sorted-id
    /// intersections) only need to produce the three counts and route them
    /// here to obtain bit-identical floats — the union is reconstructed in
    /// integer arithmetic as `|A| + |B| - |A ∩ B|`, exactly as
    /// `KeywordSet::union_len` computes it. Empty-set conventions match
    /// `similarity`.
    #[inline]
    pub fn from_counts(&self, inter: usize, a_len: usize, b_len: usize) -> f64 {
        if a_len == 0 && b_len == 0 {
            return 1.0;
        }
        if a_len == 0 || b_len == 0 {
            return 0.0;
        }
        let inter_f = inter as f64;
        match self {
            TextSimilarity::Jaccard => inter_f / (a_len + b_len - inter) as f64,
            TextSimilarity::Dice => 2.0 * inter_f / (a_len + b_len) as f64,
            TextSimilarity::Cosine => inter_f / ((a_len * b_len) as f64).sqrt(),
            TextSimilarity::Overlap => inter_f / a_len.min(b_len) as f64,
        }
    }
}

/// IDF-weighted Jaccard: `Σ_{k ∈ A∩B} w(k) / Σ_{k ∈ A∪B} w(k)`.
///
/// Separate from [`TextSimilarity`] because it needs corpus statistics.
/// Symmetric, in `[0, 1]`, and equal to plain Jaccard under uniform weights.
pub fn weighted_jaccard(a: &KeywordSet, b: &KeywordSet, idf: &IdfWeights) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = idf.sum(&a.intersection(b));
    let union = idf.sum(a) + idf.sum(b) - inter;
    if union <= 0.0 {
        // all keywords carry zero weight: fall back to unweighted
        return TextSimilarity::Jaccard.similarity(a, b);
    }
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    const ALL: [TextSimilarity; 4] = [
        TextSimilarity::Jaccard,
        TextSimilarity::Dice,
        TextSimilarity::Cosine,
        TextSimilarity::Overlap,
    ];

    #[test]
    fn identical_sets_have_similarity_one() {
        let a = set(&[1, 2, 3]);
        for m in ALL {
            assert_eq!(m.similarity(&a, &a), 1.0, "{m:?}");
        }
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        let a = set(&[1, 2]);
        let b = set(&[3, 4]);
        for m in ALL {
            assert_eq!(m.similarity(&a, &b), 0.0, "{m:?}");
        }
    }

    #[test]
    fn all_measures_are_symmetric_and_bounded() {
        let cases = [
            (set(&[1, 2, 3]), set(&[2, 3, 4, 5])),
            (set(&[1]), set(&[1, 2, 3, 4])),
            (set(&[9, 10]), set(&[10])),
        ];
        for (a, b) in &cases {
            for m in ALL {
                let ab = m.similarity(a, b);
                let ba = m.similarity(b, a);
                assert_eq!(ab, ba, "{m:?} not symmetric");
                assert!((0.0..=1.0).contains(&ab), "{m:?} out of range: {ab}");
            }
        }
    }

    #[test]
    fn jaccard_known_values() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert!((TextSimilarity::Jaccard.similarity(&a, &b) - 0.5).abs() < 1e-12);
        assert!((TextSimilarity::Dice.similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((TextSimilarity::Cosine.similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((TextSimilarity::Overlap.similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_conventions() {
        let e = KeywordSet::empty();
        let a = set(&[1]);
        for m in ALL {
            assert_eq!(m.similarity(&e, &e), 1.0);
            assert_eq!(m.similarity(&e, &a), 0.0);
            assert_eq!(m.similarity(&a, &e), 0.0);
        }
    }

    #[test]
    fn overlap_is_one_for_subsets() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3, 4]);
        assert_eq!(TextSimilarity::Overlap.similarity(&a, &b), 1.0);
        assert!(TextSimilarity::Jaccard.similarity(&a, &b) < 1.0);
    }

    #[test]
    fn from_counts_matches_similarity_bit_for_bit() {
        let cases = [
            (set(&[]), set(&[])),
            (set(&[]), set(&[1, 2])),
            (set(&[1, 2, 3]), set(&[2, 3, 4, 5])),
            (set(&[1]), set(&[7, 8, 9])),
            (set(&[1, 2]), set(&[1, 2])),
            (set(&[0, 5, 9, 13]), set(&[5, 13])),
        ];
        for (a, b) in &cases {
            for m in ALL {
                let via_counts = m.from_counts(a.intersection_len(b), a.len(), b.len());
                assert_eq!(
                    m.similarity(a, b).to_bits(),
                    via_counts.to_bits(),
                    "{m:?} on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn idf_weights_penalize_frequent_keywords() {
        // keyword 0 appears everywhere, keyword 1 once
        let corpus = [set(&[0]), set(&[0]), set(&[0, 1])];
        let idf = IdfWeights::from_corpus(corpus.iter(), 2);
        assert!(idf.weight(KeywordId(1)) > idf.weight(KeywordId(0)));
        assert!(idf.weight(KeywordId(0)) > 0.0);
        assert_eq!(idf.weight(KeywordId(99)), 0.0);
    }

    #[test]
    fn weighted_jaccard_reduces_to_jaccard_under_uniform_weights() {
        // corpus where both keywords have equal document frequency
        let corpus = [set(&[0]), set(&[1])];
        let idf = IdfWeights::from_corpus(corpus.iter(), 2);
        let a = set(&[0]);
        let b = set(&[0, 1]);
        let wj = weighted_jaccard(&a, &b, &idf);
        let j = TextSimilarity::Jaccard.similarity(&a, &b);
        assert!((wj - j).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_is_symmetric_and_bounded() {
        let corpus = [set(&[0, 1]), set(&[1, 2]), set(&[2, 3])];
        let idf = IdfWeights::from_corpus(corpus.iter(), 4);
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        let ab = weighted_jaccard(&a, &b, &idf);
        assert_eq!(ab, weighted_jaccard(&b, &a, &idf));
        assert!((0.0..=1.0).contains(&ab));
        assert_eq!(weighted_jaccard(&a, &a, &idf), 1.0);
    }

    #[test]
    fn weighted_jaccard_emphasizes_rare_matches() {
        // keyword 0: common; keyword 9: rare
        let corpus: Vec<KeywordSet> = (0..10)
            .map(|i| if i == 0 { set(&[0, 9]) } else { set(&[0]) })
            .collect();
        let idf = IdfWeights::from_corpus(corpus.iter(), 10);
        let q = set(&[0, 9]);
        let common_match = set(&[0, 5]);
        let rare_match = set(&[9, 5]);
        assert!(
            weighted_jaccard(&q, &rare_match, &idf) > weighted_jaccard(&q, &common_match, &idf)
        );
    }
}
