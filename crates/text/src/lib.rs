//! # uots-text
//!
//! Textual-domain substrate for the UOTS reproduction.
//!
//! The UOTS query matches a traveler's preference keywords against the
//! textual attributes that trajectories carry. This crate provides:
//!
//! * [`Vocabulary`] / [`KeywordId`] — keyword interning;
//! * [`KeywordSet`] — sorted, deduplicated keyword sets with merge-based set
//!   algebra;
//! * [`TextSimilarity`] — Jaccard (the paper's measure) plus Dice, cosine
//!   and overlap alternatives, and [`weighted_jaccard`] with [`IdfWeights`];
//! * [`Zipf`] — skewed rank sampling used by the tag generators.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod keyword_set;
mod similarity;
mod vocab;
mod zipf;

pub use keyword_set::KeywordSet;
pub use similarity::{weighted_jaccard, IdfWeights, TextSimilarity};
pub use vocab::{KeywordId, Vocabulary};
pub use zipf::Zipf;
