//! Zipf-distributed sampling over keyword ranks.
//!
//! Real tag vocabularies are heavily skewed: a few tags ("food",
//! "shopping") dominate while most appear rarely. The dataset generators
//! draw trajectory tags from this distribution so that textual pruning
//! selectivity behaves like it would on real data.
//!
//! Implementation: an explicit normalized CDF with binary-search inversion —
//! exact, allocation-free per sample, and deterministic under a seeded RNG.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s ≥ 0`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`. `s = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // guard against floating-point round-off excluding the last rank
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (it never is: `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len());
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // first index with cdf >= u
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf entries are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for (n, s) in [(1usize, 1.0), (10, 0.0), (100, 1.2), (7, 2.5)] {
            let z = Zipf::new(n, s);
            let sum: f64 = (0..n).map(|k| z.pmf(k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "n={n} s={s}: {sum}");
        }
    }

    #[test]
    fn pmf_is_monotonically_nonincreasing() {
        let z = Zipf::new(50, 1.1);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 20);
        }
    }

    #[test]
    fn sampling_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
        // empirical frequency of rank 0 is near its pmf
        let freq = counts[0] as f64 / 50_000.0;
        assert!((freq - z.pmf(0)).abs() < 0.02);
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
