//! Interned keyword vocabularies.
//!
//! Trajectories carry textual attributes ("shopping", "nightlife", …). To
//! keep keyword sets cheap to store and compare, every distinct keyword is
//! interned once into a [`Vocabulary`], and all downstream structures work
//! with dense [`KeywordId`]s.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of an interned keyword. Dense index into its [`Vocabulary`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The dense index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KeywordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kw{}", self.0)
    }
}

/// A bidirectional keyword ↔ id mapping.
///
/// Keywords are normalized to lowercase with surrounding whitespace trimmed
/// before interning, so `"Shopping "` and `"shopping"` share an id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, KeywordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    fn normalize(word: &str) -> String {
        word.trim().to_lowercase()
    }

    /// Interns `word`, returning its id (existing or fresh).
    ///
    /// Empty (after normalization) keywords are rejected with `None`.
    pub fn intern(&mut self, word: &str) -> Option<KeywordId> {
        let norm = Self::normalize(word);
        if norm.is_empty() {
            return None;
        }
        if let Some(&id) = self.index.get(&norm) {
            return Some(id);
        }
        let id = KeywordId(self.words.len() as u32);
        self.index.insert(norm.clone(), id);
        self.words.push(norm);
        Some(id)
    }

    /// Looks up a keyword without interning it.
    pub fn get(&self, word: &str) -> Option<KeywordId> {
        self.index.get(&Self::normalize(word)).copied()
    }

    /// The keyword string for `id`, or `None` for a foreign id.
    pub fn word(&self, id: KeywordId) -> Option<&str> {
        self.words.get(id.index()).map(String::as_str)
    }

    /// Number of distinct keywords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterator over `(id, keyword)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (KeywordId(i as u32), w.as_str()))
    }

    /// Rebuilds the lookup index; must be called after deserializing (the
    /// map is skipped during serialization to halve the payload).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), KeywordId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("shopping").unwrap();
        let b = v.intern("shopping").unwrap();
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn normalization_merges_case_and_whitespace() {
        let mut v = Vocabulary::new();
        let a = v.intern("Shopping").unwrap();
        let b = v.intern("  shopping  ").unwrap();
        let c = v.intern("SHOPPING").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(v.word(a), Some("shopping"));
    }

    #[test]
    fn empty_keywords_are_rejected() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern(""), None);
        assert_eq!(v.intern("   "), None);
        assert!(v.is_empty());
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        assert_eq!(v.get("museum"), None);
        assert_eq!(v.len(), 0);
        let id = v.intern("museum").unwrap();
        assert_eq!(v.get("Museum"), Some(id));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let ids: Vec<KeywordId> = ["a", "b", "c"]
            .iter()
            .map(|w| v.intern(w).unwrap())
            .collect();
        assert_eq!(ids, vec![KeywordId(0), KeywordId(1), KeywordId(2)]);
        let collected: Vec<(KeywordId, &str)> = v.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (KeywordId(1), "b"));
    }

    #[test]
    fn foreign_id_lookup_is_none() {
        let v = Vocabulary::new();
        assert_eq!(v.word(KeywordId(5)), None);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = Vocabulary::new();
        v.intern("park").unwrap();
        v.intern("cafe").unwrap();
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("park"), None); // index skipped in serde
        back.rebuild_index();
        assert_eq!(back.get("park"), Some(KeywordId(0)));
        assert_eq!(back.get("cafe"), Some(KeywordId(1)));
    }
}
