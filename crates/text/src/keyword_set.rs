//! Sorted keyword sets with merge-based set algebra.
//!
//! A [`KeywordSet`] is the textual attribute set of a trajectory or a query:
//! a deduplicated, sorted vector of [`KeywordId`]s. Sets in this workload
//! are tiny (a handful of tags), so sorted-vector merges beat hash sets on
//! both memory and speed, and give deterministic iteration for free.

use crate::KeywordId;
use serde::{Deserialize, Serialize};

/// An immutable, sorted, deduplicated set of keywords.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct KeywordSet(Vec<KeywordId>);

impl KeywordSet {
    /// The empty set.
    pub fn empty() -> Self {
        KeywordSet(Vec::new())
    }

    /// Builds a set from any id iterator; duplicates are removed.
    pub fn from_ids(ids: impl IntoIterator<Item = KeywordId>) -> Self {
        let mut v: Vec<KeywordId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        KeywordSet(v)
    }

    /// Number of keywords in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, id: KeywordId) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// The ids in ascending order.
    #[inline]
    pub fn ids(&self) -> &[KeywordId] {
        &self.0
    }

    /// Iterator over the ids in ascending order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = KeywordId> + '_ {
        self.0.iter().copied()
    }

    /// Size of the intersection with `other` (linear merge walk).
    pub fn intersection_len(&self, other: &KeywordSet) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with `other`.
    #[inline]
    pub fn union_len(&self, other: &KeywordSet) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// The intersection as a new set.
    pub fn intersection(&self, other: &KeywordSet) -> KeywordSet {
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::new();
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        KeywordSet(out)
    }

    /// The union as a new set.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        KeywordSet(out)
    }

    /// Whether the sets share at least one keyword (early-exit merge walk).
    pub fn intersects(&self, other: &KeywordSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.0, &other.0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl FromIterator<KeywordId> for KeywordSet {
    fn from_iter<T: IntoIterator<Item = KeywordId>>(iter: T) -> Self {
        KeywordSet::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a KeywordSet {
    type Item = KeywordId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, KeywordId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ids(), &[KeywordId(1), KeywordId(3), KeywordId(5)]);
    }

    #[test]
    fn membership() {
        let s = set(&[2, 4, 6]);
        assert!(s.contains(KeywordId(4)));
        assert!(!s.contains(KeywordId(5)));
        assert!(!KeywordSet::empty().contains(KeywordId(0)));
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union_len(&b), 5);
        assert_eq!(a.intersection(&b), set(&[3, 4]));
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 5]));
    }

    #[test]
    fn empty_set_algebra() {
        let a = set(&[1, 2]);
        let e = KeywordSet::empty();
        assert_eq!(a.intersection_len(&e), 0);
        assert_eq!(a.union_len(&e), 2);
        assert_eq!(e.union_len(&e), 0);
        assert!(!a.intersects(&e));
    }

    #[test]
    fn intersects_matches_intersection_len() {
        let a = set(&[1, 9, 20]);
        let b = set(&[2, 9]);
        let c = set(&[3, 10]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn set_operations_against_hashset_oracle() {
        use std::collections::HashSet;
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![1], vec![1]),
            (vec![1, 2, 3], vec![4, 5, 6]),
            (vec![0, 2, 4, 6, 8], vec![1, 2, 3, 4]),
            (vec![10, 20, 30], vec![30, 10]),
        ];
        for (xs, ys) in cases {
            let a = set(&xs);
            let b = set(&ys);
            let ha: HashSet<u32> = xs.iter().copied().collect();
            let hb: HashSet<u32> = ys.iter().copied().collect();
            assert_eq!(a.intersection_len(&b), ha.intersection(&hb).count());
            assert_eq!(a.union_len(&b), ha.union(&hb).count());
            assert_eq!(a.intersects(&b), !ha.is_disjoint(&hb));
        }
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let s: KeywordSet = [KeywordId(3), KeywordId(1)].into_iter().collect();
        let back: Vec<KeywordId> = (&s).into_iter().collect();
        assert_eq!(back, vec![KeywordId(1), KeywordId(3)]);
    }

    #[test]
    fn serde_round_trip() {
        let s = set(&[7, 3, 7, 1]);
        let json = serde_json::to_string(&s).unwrap();
        let back: KeywordSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
