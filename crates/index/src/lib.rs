//! # uots-index
//!
//! Index substrate for the UOTS reproduction:
//!
//! * [`GridIndex`] — uniform spatial grid over a point set, used to snap raw
//!   GPS samples and query locations to network vertices;
//! * [`VertexInvertedIndex`] — vertex → values (trajectory ids), the
//!   structure the network expansion probes on every settled vertex;
//! * [`KeywordInvertedIndex`] — keyword → values, driving the textual-first
//!   baseline and exact textual similarity evaluation;
//! * [`TimestampIndex`] / [`TimeExpansion`] — sorted-time expansion cursor
//!   for the temporal extension;
//! * [`DynamicVertexIndex`] — updatable vertex registry that freezes into
//!   the CSR index (batched ingestion / deletion workflows).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dynamic;
mod grid;
mod inverted;
mod timestamp;

pub use dynamic::DynamicVertexIndex;
pub use grid::GridIndex;
pub use inverted::{KeywordInvertedIndex, VertexInvertedIndex};
pub use timestamp::{TimeExpansion, TimeScanned, TimestampIndex, DAY_SECONDS};
