//! Updatable vertex → values index.
//!
//! The query-time [`VertexInvertedIndex`](crate::VertexInvertedIndex) is a
//! frozen CSR structure — optimal to probe, impossible to update. Real
//! deployments ingest trajectories continuously and retire them (e.g. after
//! near-duplicate cleaning with the similarity join), so this module adds a
//! mutable registry with the same posting semantics plus
//! [`DynamicVertexIndex::freeze`] to produce the CSR index the engines
//! consume. The intended pattern is batched: mutate freely, freeze once per
//! serving epoch.

use crate::VertexInvertedIndex;
use serde::{Deserialize, Serialize};
use uots_network::NodeId;

/// A mutable vertex → sorted values map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicVertexIndex<V> {
    postings: Vec<Vec<V>>,
}

impl<V: Copy + Ord> DynamicVertexIndex<V> {
    /// An empty index over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        DynamicVertexIndex {
            postings: vec![Vec::new(); num_vertices],
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.postings.len()
    }

    /// Total stored postings.
    pub fn num_postings(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Registers `value` on vertex `v`; returns `false` when it was already
    /// present (postings are sets).
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn insert(&mut self, v: NodeId, value: V) -> bool {
        let list = &mut self.postings[v.index()];
        match list.binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, value);
                true
            }
        }
    }

    /// Removes `value` from vertex `v`; returns `false` when it was not
    /// registered there.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn remove(&mut self, v: NodeId, value: V) -> bool {
        let list = &mut self.postings[v.index()];
        match list.binary_search(&value) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The sorted values registered on `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn values_at(&self, v: NodeId) -> &[V] {
        &self.postings[v.index()]
    }

    /// Freezes into the CSR [`VertexInvertedIndex`] consumed by the query
    /// engines.
    pub fn freeze(&self) -> VertexInvertedIndex<V> {
        VertexInvertedIndex::build(
            self.postings.len(),
            self.postings
                .iter()
                .enumerate()
                .flat_map(|(v, list)| list.iter().map(move |&val| (NodeId(v as u32), val))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_semantics() {
        let mut idx = DynamicVertexIndex::new(3);
        assert!(idx.insert(NodeId(0), 5u32));
        assert!(idx.insert(NodeId(0), 2));
        assert!(!idx.insert(NodeId(0), 5), "duplicate insert is a no-op");
        assert_eq!(idx.values_at(NodeId(0)), &[2, 5]);
        assert_eq!(idx.num_postings(), 2);

        assert!(idx.remove(NodeId(0), 5));
        assert!(!idx.remove(NodeId(0), 5), "double remove is a no-op");
        assert!(!idx.remove(NodeId(1), 2), "absent vertex posting");
        assert_eq!(idx.values_at(NodeId(0)), &[2]);
    }

    #[test]
    fn freeze_matches_direct_build() {
        let mut dynamic = DynamicVertexIndex::new(4);
        let registrations = [
            (NodeId(0), 3u32),
            (NodeId(0), 1),
            (NodeId(2), 7),
            (NodeId(3), 1),
        ];
        for (v, val) in registrations {
            dynamic.insert(v, val);
        }
        let frozen = dynamic.freeze();
        let direct = VertexInvertedIndex::build(4, registrations);
        for v in 0..4 {
            assert_eq!(frozen.values_at(NodeId(v)), direct.values_at(NodeId(v)));
        }
    }

    #[test]
    fn freeze_after_removals_reflects_current_state() {
        let mut dynamic = DynamicVertexIndex::new(2);
        dynamic.insert(NodeId(0), 1u32);
        dynamic.insert(NodeId(0), 2);
        dynamic.insert(NodeId(1), 1);
        dynamic.remove(NodeId(0), 1);
        let frozen = dynamic.freeze();
        assert_eq!(frozen.values_at(NodeId(0)), &[2]);
        assert_eq!(frozen.values_at(NodeId(1)), &[1]);
        assert_eq!(frozen.num_postings(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut idx = DynamicVertexIndex::new(2);
        idx.insert(NodeId(1), 9u32);
        let json = serde_json::to_string(&idx).unwrap();
        let back: DynamicVertexIndex<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.values_at(NodeId(1)), &[9]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_vertex_panics() {
        let mut idx = DynamicVertexIndex::new(1);
        idx.insert(NodeId(5), 1u32);
    }
}
