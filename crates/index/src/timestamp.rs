//! Sorted timestamp index: the temporal analogue of network expansion.
//!
//! The temporal extension of the UOTS engine (PTM-style third channel)
//! expands outward from a query timestamp, scanning registered samples in
//! nondecreasing time difference — exactly mirroring how
//! `uots_network::expansion::NetworkExpansion` scans vertices in
//! nondecreasing network distance. The [`TimeExpansion`] cursor provides
//! the same contract: nondecreasing `|t - t_q|` and a radius that
//! lower-bounds everything not yet scanned.
//!
//! Timestamps are seconds within a 24-hour day (`0 ..= 86_400`), matching
//! the paper family's convention that dates are ignored because urban
//! movements recur daily.

use serde::{Deserialize, Serialize};

/// Seconds in a day; all timestamps are within `[0, DAY_SECONDS]`.
pub const DAY_SECONDS: f64 = 86_400.0;

/// A static index of `(timestamp, value)` pairs sorted by timestamp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimestampIndex<V> {
    times: Vec<f64>,
    values: Vec<V>,
}

impl<V: Copy> TimestampIndex<V> {
    /// Builds the index from arbitrary-order registrations.
    ///
    /// # Panics
    ///
    /// Panics when a timestamp is not finite or outside `[0, 86400]`.
    pub fn build(registrations: impl IntoIterator<Item = (f64, V)>) -> Self {
        let mut pairs: Vec<(f64, V)> = registrations.into_iter().collect();
        for (t, _) in &pairs {
            assert!(
                t.is_finite() && (0.0..=DAY_SECONDS).contains(t),
                "timestamp {t} outside [0, 86400]"
            );
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        TimestampIndex {
            times: pairs.iter().map(|p| p.0).collect(),
            values: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Number of registered samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the index holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Starts a temporal expansion from `t` (clamped to the day range).
    pub fn expand_from(&self, t: f64) -> TimeExpansion<'_, V> {
        let t = t.clamp(0.0, DAY_SECONDS);
        // first index with time >= t
        let right = self.times.partition_point(|&x| x < t);
        TimeExpansion {
            index: self,
            t,
            left: right as isize - 1,
            right,
            radius: 0.0,
        }
    }
}

/// A scanned sample: its value and its absolute time difference from the
/// expansion origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScanned<V> {
    /// The registered value.
    pub value: V,
    /// `|t_sample - t_query|` in seconds.
    pub dt: f64,
}

/// Two-pointer outward walk over a [`TimestampIndex`].
///
/// Yields samples in nondecreasing `dt`; [`TimeExpansion::radius`] is a
/// valid lower bound on the `dt` of every unscanned sample.
#[derive(Debug)]
pub struct TimeExpansion<'a, V> {
    index: &'a TimestampIndex<V>,
    t: f64,
    /// Next candidate to the left (earlier), -1 when exhausted.
    left: isize,
    /// Next candidate to the right (later or equal), `len` when exhausted.
    right: usize,
    radius: f64,
}

impl<'a, V: Copy> TimeExpansion<'a, V> {
    /// The expansion origin timestamp.
    pub fn origin(&self) -> f64 {
        self.t
    }

    /// `dt` of the most recently scanned sample: a lower bound on every
    /// unscanned sample's `dt` (and `f64::INFINITY` once exhausted).
    pub fn radius(&self) -> f64 {
        if self.is_exhausted() {
            f64::INFINITY
        } else {
            self.radius
        }
    }

    /// Whether all samples have been scanned.
    pub fn is_exhausted(&self) -> bool {
        self.left < 0 && self.right >= self.index.times.len()
    }

    /// Scans the next-nearest sample in time.
    pub fn next_scanned(&mut self) -> Option<TimeScanned<V>> {
        let lt = (self.left >= 0).then(|| self.t - self.index.times[self.left as usize]);
        let rt =
            (self.right < self.index.times.len()).then(|| self.index.times[self.right] - self.t);
        let take_left = match (lt, rt) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(l), Some(r)) => l <= r,
        };
        let scanned = if take_left {
            let i = self.left as usize;
            self.left -= 1;
            TimeScanned {
                value: self.index.values[i],
                dt: self.t - self.index.times[i],
            }
        } else {
            let i = self.right;
            self.right += 1;
            TimeScanned {
                value: self.index.values[i],
                dt: self.index.times[i] - self.t,
            }
        };
        debug_assert!(scanned.dt >= self.radius - 1e-9);
        self.radius = scanned.dt;
        Some(scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> TimestampIndex<u32> {
        TimestampIndex::build(vec![
            (3_600.0, 1u32),
            (7_200.0, 2),
            (7_300.0, 3),
            (10_000.0, 4),
            (0.0, 5),
            (86_400.0, 6),
        ])
    }

    #[test]
    fn scans_in_nondecreasing_dt() {
        let idx = index();
        let mut exp = idx.expand_from(7_250.0);
        let mut last = 0.0;
        let mut seen = Vec::new();
        while let Some(s) = exp.next_scanned() {
            assert!(s.dt >= last - 1e-9);
            last = s.dt;
            seen.push(s.value);
        }
        assert_eq!(seen.len(), 6);
        // nearest two are the 7200/7300 samples (both dt = 50; earlier-side
        // sample wins the tie)
        assert_eq!(&seen[..2], &[2, 3]);
        assert!(exp.is_exhausted());
        assert_eq!(exp.radius(), f64::INFINITY);
    }

    #[test]
    fn radius_lower_bounds_unscanned() {
        let idx = index();
        let mut exp = idx.expand_from(7_250.0);
        for _ in 0..3 {
            exp.next_scanned();
        }
        let r = exp.radius();
        // remaining: 0.0, 10_000, 86_400 — all with dt >= r
        for t in [0.0f64, 10_000.0, 86_400.0] {
            assert!((t - 7_250.0).abs() >= r);
        }
    }

    #[test]
    fn expansion_from_exact_sample_time() {
        let idx = index();
        let mut exp = idx.expand_from(7_200.0);
        let first = exp.next_scanned().unwrap();
        assert_eq!(first.value, 2);
        assert_eq!(first.dt, 0.0);
    }

    #[test]
    fn expansion_from_extremes() {
        let idx = index();
        let mut exp = idx.expand_from(0.0);
        assert_eq!(exp.next_scanned().unwrap().value, 5);
        let mut exp = idx.expand_from(86_400.0);
        assert_eq!(exp.next_scanned().unwrap().value, 6);
    }

    #[test]
    fn out_of_range_origin_is_clamped() {
        let idx = index();
        let exp = idx.expand_from(1e9);
        assert_eq!(exp.origin(), DAY_SECONDS);
    }

    #[test]
    fn empty_index_expansion() {
        let idx: TimestampIndex<u32> = TimestampIndex::build(vec![]);
        assert!(idx.is_empty());
        let mut exp = idx.expand_from(100.0);
        assert!(exp.is_exhausted());
        assert_eq!(exp.next_scanned(), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_timestamp_panics() {
        TimestampIndex::build(vec![(-1.0, 0u32)]);
    }

    #[test]
    fn duplicates_all_scanned() {
        let idx = TimestampIndex::build(vec![(100.0, 1u32), (100.0, 2), (100.0, 3)]);
        let mut exp = idx.expand_from(100.0);
        let mut vals = Vec::new();
        while let Some(s) = exp.next_scanned() {
            assert_eq!(s.dt, 0.0);
            vals.push(s.value);
        }
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2, 3]);
    }
}
