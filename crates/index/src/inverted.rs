//! Inverted indexes from graph vertices and keywords to arbitrary values.
//!
//! The UOTS expansion search discovers trajectories by settling a vertex and
//! asking "which trajectories pass through here?" — that is the
//! [`VertexInvertedIndex`]. The textual-first baseline asks "which
//! trajectories carry this keyword?" — that is the
//! [`KeywordInvertedIndex`]. Both are generic over the posting value so the
//! substrate stays independent of the trajectory crate (which instantiates
//! `V = TrajectoryId`).
//!
//! Postings are sorted and deduplicated at freeze time, which makes merges
//! and membership checks cheap and iteration deterministic.

use serde::{Deserialize, Serialize};
use uots_network::NodeId;
use uots_text::KeywordId;

/// Maps every vertex of a road network to the sorted list of values (e.g.
/// trajectory ids) registered on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VertexInvertedIndex<V> {
    /// CSR offsets, length `num_vertices + 1`.
    starts: Vec<u32>,
    postings: Vec<V>,
}

impl<V: Copy + Ord> VertexInvertedIndex<V> {
    /// Builds the index for a network of `num_vertices` vertices from
    /// `(vertex, value)` registrations. A value appearing on the same vertex
    /// multiple times (a trajectory revisiting it) is stored once.
    ///
    /// # Panics
    ///
    /// Panics when a registration references a vertex `>= num_vertices`.
    pub fn build(
        num_vertices: usize,
        registrations: impl IntoIterator<Item = (NodeId, V)>,
    ) -> Self {
        let mut per_vertex: Vec<Vec<V>> = vec![Vec::new(); num_vertices];
        for (v, val) in registrations {
            assert!(v.index() < num_vertices, "vertex out of range");
            per_vertex[v.index()].push(val);
        }
        let mut starts = Vec::with_capacity(num_vertices + 1);
        let mut postings = Vec::new();
        starts.push(0u32);
        for list in &mut per_vertex {
            list.sort_unstable();
            list.dedup();
            postings.extend_from_slice(list);
            starts.push(postings.len() as u32);
        }
        VertexInvertedIndex { starts, postings }
    }

    /// The sorted values registered on vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[inline]
    pub fn values_at(&self, v: NodeId) -> &[V] {
        let lo = self.starts[v.index()] as usize;
        let hi = self.starts[v.index() + 1] as usize;
        &self.postings[lo..hi]
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of stored postings.
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }
}

/// Maps every keyword to the sorted list of values whose keyword sets
/// contain it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeywordInvertedIndex<V> {
    starts: Vec<u32>,
    postings: Vec<V>,
}

impl<V: Copy + Ord> KeywordInvertedIndex<V> {
    /// Builds the index over a vocabulary of `vocab_len` keywords from
    /// `(keyword, value)` registrations.
    ///
    /// # Panics
    ///
    /// Panics when a registration references a keyword `>= vocab_len`.
    pub fn build(
        vocab_len: usize,
        registrations: impl IntoIterator<Item = (KeywordId, V)>,
    ) -> Self {
        let mut per_kw: Vec<Vec<V>> = vec![Vec::new(); vocab_len];
        for (k, val) in registrations {
            assert!(k.index() < vocab_len, "keyword out of range");
            per_kw[k.index()].push(val);
        }
        let mut starts = Vec::with_capacity(vocab_len + 1);
        let mut postings = Vec::new();
        starts.push(0u32);
        for list in &mut per_kw {
            list.sort_unstable();
            list.dedup();
            postings.extend_from_slice(list);
            starts.push(postings.len() as u32);
        }
        KeywordInvertedIndex { starts, postings }
    }

    /// The sorted values carrying keyword `k`; empty for out-of-range ids.
    #[inline]
    pub fn values_for(&self, k: KeywordId) -> &[V] {
        if k.index() + 1 >= self.starts.len() {
            return &[];
        }
        let lo = self.starts[k.index()] as usize;
        let hi = self.starts[k.index() + 1] as usize;
        &self.postings[lo..hi]
    }

    /// Document frequency of keyword `k`.
    pub fn document_frequency(&self, k: KeywordId) -> usize {
        self.values_for(k).len()
    }

    /// Union of the posting lists of `keywords`, deduplicated and sorted
    /// (k-way merge via repeated two-way merges; lists are short in this
    /// workload).
    pub fn union_of(&self, keywords: impl IntoIterator<Item = KeywordId>) -> Vec<V> {
        let mut out: Vec<V> = Vec::new();
        for k in keywords {
            let list = self.values_for(k);
            if list.is_empty() {
                continue;
            }
            if out.is_empty() {
                out.extend_from_slice(list);
                continue;
            }
            let mut merged = Vec::with_capacity(out.len() + list.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < out.len() && j < list.len() {
                match out[i].cmp(&list[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(out[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(list[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(out[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&out[i..]);
            merged.extend_from_slice(&list[j..]);
            out = merged;
        }
        out
    }

    /// Number of keywords covered.
    pub fn vocab_len(&self) -> usize {
        self.starts.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_index_sorts_and_dedups() {
        let idx = VertexInvertedIndex::build(
            3,
            vec![
                (NodeId(0), 5u32),
                (NodeId(0), 2),
                (NodeId(0), 5),
                (NodeId(2), 1),
            ],
        );
        assert_eq!(idx.values_at(NodeId(0)), &[2, 5]);
        assert_eq!(idx.values_at(NodeId(1)), &[] as &[u32]);
        assert_eq!(idx.values_at(NodeId(2)), &[1]);
        assert_eq!(idx.num_vertices(), 3);
        assert_eq!(idx.num_postings(), 3);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn vertex_index_rejects_out_of_range() {
        VertexInvertedIndex::build(2, vec![(NodeId(5), 1u32)]);
    }

    #[test]
    fn keyword_index_basics() {
        let idx = KeywordInvertedIndex::build(
            4,
            vec![
                (KeywordId(1), 10u32),
                (KeywordId(1), 7),
                (KeywordId(3), 7),
                (KeywordId(1), 10),
            ],
        );
        assert_eq!(idx.values_for(KeywordId(1)), &[7, 10]);
        assert_eq!(idx.values_for(KeywordId(0)), &[] as &[u32]);
        assert_eq!(idx.values_for(KeywordId(99)), &[] as &[u32]);
        assert_eq!(idx.document_frequency(KeywordId(1)), 2);
        assert_eq!(idx.vocab_len(), 4);
    }

    #[test]
    fn union_merges_sorted_and_deduped() {
        let idx = KeywordInvertedIndex::build(
            3,
            vec![
                (KeywordId(0), 1u32),
                (KeywordId(0), 3),
                (KeywordId(1), 2),
                (KeywordId(1), 3),
                (KeywordId(2), 9),
            ],
        );
        let u = idx.union_of([KeywordId(0), KeywordId(1), KeywordId(2)]);
        assert_eq!(u, vec![1, 2, 3, 9]);
        let u = idx.union_of([KeywordId(1)]);
        assert_eq!(u, vec![2, 3]);
        let u: Vec<u32> = idx.union_of([]);
        assert!(u.is_empty());
    }

    #[test]
    fn union_ignores_unknown_keywords() {
        let idx = KeywordInvertedIndex::build(1, vec![(KeywordId(0), 4u32)]);
        let u = idx.union_of([KeywordId(0), KeywordId(42)]);
        assert_eq!(u, vec![4]);
    }

    #[test]
    fn serde_round_trip() {
        let idx = VertexInvertedIndex::build(2, vec![(NodeId(0), 1u32), (NodeId(1), 2)]);
        let json = serde_json::to_string(&idx).unwrap();
        let back: VertexInvertedIndex<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.values_at(NodeId(0)), &[1]);
        assert_eq!(back.values_at(NodeId(1)), &[2]);
    }
}
