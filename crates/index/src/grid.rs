//! Uniform spatial grid over a fixed point set.
//!
//! Used to snap raw GPS samples and query locations to their nearest network
//! vertex (the paper assumes map-matched inputs; the grid is what makes the
//! map-matching simulation and query snapping fast). Euclidean R-trees are
//! deliberately avoided — the paper notes they are ineffective for *network*
//! pruning — but nearest-*vertex* lookup is a pure geometric problem where a
//! grid is ideal.

use serde::{Deserialize, Serialize};
use uots_network::{BBox, Point};

/// A static uniform grid over a set of points, supporting nearest-neighbour
/// and radius queries. Point identity is the index into the original slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex {
    bbox: BBox,
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// CSR-style buckets: `starts[c]..starts[c+1]` slices `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds a grid over `points`, sized for roughly `target_per_cell`
    /// points per cell (clamped to sane limits).
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty.
    pub fn build(points: &[Point], target_per_cell: usize) -> Self {
        assert!(!points.is_empty(), "grid index needs at least one point");
        let target = target_per_cell.max(1);
        let mut bbox = BBox::of(points.iter());
        // degenerate extents (single point / collinear) get a tiny pad so
        // cell math stays finite
        if bbox.width() == 0.0 || bbox.height() == 0.0 {
            bbox = BBox::new(bbox.min.translate(-0.5, -0.5), bbox.max.translate(0.5, 0.5));
        }
        let cells_wanted = (points.len() as f64 / target as f64).max(1.0);
        let aspect = bbox.width() / bbox.height();
        let rows = (cells_wanted / aspect).sqrt().ceil().max(1.0) as usize;
        let cols = (cells_wanted / rows as f64).ceil().max(1.0) as usize;
        let cell_size = (bbox.width() / cols as f64).max(bbox.height() / rows as f64);
        // Recompute grid shape from the square cell size; the hard cap
        // guards against degenerate/hostile coordinate distributions ever
        // allocating an absurd cell table. The cell size must be enlarged
        // *before* deriving the shape: clamping cols/rows while keeping a
        // smaller cell size would leave boundary cells absorbing all
        // overflow points — wider than `cell_size` — and the ring bound in
        // `nearest` (every point of ring r is ≥ (r−1)·cell_size away) would
        // terminate before the absorbing cell is scanned.
        let max_side = (16.0 * points.len() as f64).sqrt().ceil().max(4.0) as usize;
        let cell_size = cell_size
            .max(bbox.width() / max_side as f64)
            .max(bbox.height() / max_side as f64);
        let cols = ((bbox.width() / cell_size).ceil().max(1.0) as usize).min(max_side);
        let rows = ((bbox.height() / cell_size).ceil().max(1.0) as usize).min(max_side);

        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - bbox.min.x) / cell_size) as usize).min(cols - 1);
            let cy = (((p.y - bbox.min.y) / cell_size) as usize).min(rows - 1);
            cy * cols + cx
        };

        let ncells = cols * rows;
        let mut counts = vec![0u32; ncells];
        for p in points {
            counts[cell_of(p)] += 1;
        }
        let mut starts = vec![0u32; ncells + 1];
        for c in 0..ncells {
            starts[c + 1] = starts[c] + counts[c];
        }
        let mut entries = vec![0u32; points.len()];
        let mut cursor = starts[..ncells].to_vec();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        GridIndex {
            bbox,
            cell_size,
            cols,
            rows,
            starts,
            entries,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty (never: construction requires points).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid shape `(cols, rows)` — exposed for diagnostics and tests.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    #[inline]
    fn cell_coords(&self, p: &Point) -> (isize, isize) {
        let cx = ((p.x - self.bbox.min.x) / self.cell_size).floor() as isize;
        let cy = ((p.y - self.bbox.min.y) / self.cell_size).floor() as isize;
        (
            cx.clamp(0, self.cols as isize - 1),
            cy.clamp(0, self.rows as isize - 1),
        )
    }

    #[inline]
    fn bucket(&self, cx: isize, cy: isize) -> &[u32] {
        if cx < 0 || cy < 0 || cx >= self.cols as isize || cy >= self.rows as isize {
            return &[];
        }
        let c = cy as usize * self.cols + cx as usize;
        let lo = self.starts[c] as usize;
        let hi = self.starts[c + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Index and distance of the point nearest to `q`.
    ///
    /// Expanding-ring search: rings of cells are scanned outwards until the
    /// best candidate found is provably closer than anything an unscanned
    /// ring could contain.
    pub fn nearest(&self, q: &Point) -> (usize, f64) {
        let (qcx, qcy) = self.cell_coords(q);
        let mut best_i = usize::MAX;
        let mut best_d2 = f64::INFINITY;
        let max_ring = self.cols.max(self.rows) as isize;
        for ring in 0..=max_ring {
            // Any point in a cell of ring `r` is at least
            // `(r - 1) * cell_size` away (conservative: the query point may
            // sit anywhere inside its own cell).
            if best_i != usize::MAX {
                let min_possible = (ring - 1).max(0) as f64 * self.cell_size;
                if min_possible * min_possible > best_d2 {
                    break;
                }
            }
            let mut visit = |cx: isize, cy: isize| {
                for &i in self.bucket(cx, cy) {
                    let d2 = q.distance_sq(&self.points[i as usize]);
                    if d2 < best_d2 {
                        best_d2 = d2;
                        best_i = i as usize;
                    }
                }
            };
            if ring == 0 {
                visit(qcx, qcy);
            } else {
                for cx in (qcx - ring)..=(qcx + ring) {
                    visit(cx, qcy - ring);
                    visit(cx, qcy + ring);
                }
                for cy in (qcy - ring + 1)..(qcy + ring) {
                    visit(qcx - ring, cy);
                    visit(qcx + ring, cy);
                }
            }
        }
        debug_assert!(best_i != usize::MAX);
        (best_i, best_d2.sqrt())
    }

    /// Indices of all points within Euclidean distance `radius` of `q`,
    /// in ascending index order.
    pub fn within_radius(&self, q: &Point, radius: f64) -> Vec<usize> {
        let r2 = radius * radius;
        let (qcx, qcy) = self.cell_coords(q);
        let span = (radius / self.cell_size).ceil() as isize + 1;
        let mut out = Vec::new();
        for cy in (qcy - span)..=(qcy + span) {
            for cx in (qcx - span)..=(qcx + span) {
                for &i in self.bucket(cx, cy) {
                    if q.distance_sq(&self.points[i as usize]) <= r2 {
                        out.push(i as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(seed: u64, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 60.0))
            .collect()
    }

    fn nearest_linear(points: &[Point], q: &Point) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in points.iter().enumerate() {
            let d = q.distance(p);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = random_points(3, 500);
        let grid = GridIndex::build(&pts, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let q = Point::new(
                rng.gen::<f64>() * 120.0 - 10.0,
                rng.gen::<f64>() * 80.0 - 10.0,
            );
            let (gi, gd) = grid.nearest(&q);
            let (_li, ld) = nearest_linear(&pts, &q);
            assert!(
                (gd - ld).abs() < 1e-9,
                "query {q:?}: grid {gd} (idx {gi}) vs linear {ld}"
            );
        }
    }

    #[test]
    fn nearest_of_indexed_point_is_itself() {
        let pts = random_points(4, 100);
        let grid = GridIndex::build(&pts, 4);
        for (i, p) in pts.iter().enumerate() {
            let (gi, gd) = grid.nearest(p);
            assert!(gd < 1e-12);
            // ties possible in principle, but random points are distinct
            assert_eq!(gi, i);
        }
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let pts = random_points(5, 300);
        let grid = GridIndex::build(&pts, 6);
        let q = Point::new(50.0, 30.0);
        for radius in [0.5, 3.0, 10.0, 200.0] {
            let got = grid.within_radius(&q, radius);
            let expect: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.distance(p) <= radius)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expect, "radius {radius}");
        }
    }

    #[test]
    fn single_point_and_degenerate_extents() {
        let grid = GridIndex::build(&[Point::new(3.0, 4.0)], 4);
        let (i, d) = grid.nearest(&Point::new(0.0, 0.0));
        assert_eq!(i, 0);
        assert!((d - 5.0).abs() < 1e-12);

        // collinear points (zero height)
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 2.0)).collect();
        let grid = GridIndex::build(&pts, 2);
        let (i, _) = grid.nearest(&Point::new(7.2, 2.0));
        assert_eq!(i, 7);
    }

    #[test]
    fn far_outside_queries_work() {
        let pts = random_points(6, 50);
        let grid = GridIndex::build(&pts, 4);
        let q = Point::new(-1000.0, 5000.0);
        let (gi, gd) = grid.nearest(&q);
        let (li, ld) = nearest_linear(&pts, &q);
        assert_eq!(gi, li);
        assert!((gd - ld).abs() < 1e-9);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![Point::new(1.0, 1.0); 20];
        let grid = GridIndex::build(&pts, 4);
        let (_, d) = grid.nearest(&Point::new(1.0, 1.0));
        assert!(d < 1e-12);
        assert_eq!(grid.within_radius(&Point::new(1.0, 1.0), 0.1).len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_point_set_panics() {
        GridIndex::build(&[], 4);
    }

    /// Every cell's true extent must fit in `cell_size`, or the ring bound
    /// in `nearest` is unsound. Regression for the `max_side` clamp bug:
    /// the pre-fix build kept the un-clamped cell size, so on extreme
    /// aspect ratios the boundary cells absorbed all overflow.
    #[test]
    fn clamped_grid_still_covers_the_bbox() {
        // width 1e6 × height 1, 100 points, target 1 → the unclamped shape
        // wants ~100 columns, max_side clamps to 40
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new(i as f64 * 10_101.01, (i % 2) as f64))
            .collect();
        let grid = GridIndex::build(&pts, 1);
        let (cols, rows) = grid.shape();
        let bbox = BBox::of(pts.iter());
        assert!(
            cols as f64 * grid.cell_size >= bbox.width() - 1e-6,
            "grid ({cols}×{rows}, cell {}) must cover width {}",
            grid.cell_size,
            bbox.width()
        );
        assert!(rows as f64 * grid.cell_size >= bbox.height() - 1e-6);
    }

    /// Brute-force differential over hostile coordinate distributions:
    /// extreme aspect ratios and point clusters at one corner, with
    /// queries aimed at the far end so the pre-fix ring bound terminated
    /// before the true nearest point's (absorbing) cell was scanned.
    #[test]
    fn nearest_matches_linear_scan_under_hostile_distributions() {
        let mut rng = StdRng::seed_from_u64(0x6712);
        let mut hostile: Vec<(String, Vec<Point>)> = Vec::new();
        // 1) extreme horizontal strip: clamp kicks in hard
        hostile.push((
            "wide strip".into(),
            (0..120)
                .map(|_| Point::new(rng.gen::<f64>() * 1e6, rng.gen::<f64>()))
                .collect(),
        ));
        // 2) extreme vertical strip
        hostile.push((
            "tall strip".into(),
            (0..120)
                .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>() * 1e6))
                .collect(),
        ));
        // 3) dense cluster at one corner plus a lone far point: the far
        // point lives in an absorbing boundary cell pre-fix
        let mut corner: Vec<Point> = (0..150)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        corner.push(Point::new(1e6, 1e6));
        hostile.push(("corner cluster".into(), corner));
        // 4) two opposite-corner clusters with a huge gap
        let mut bi: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0))
            .collect();
        bi.extend(
            (0..60)
                .map(|_| Point::new(1e5 + rng.gen::<f64>() * 10.0, 1e5 + rng.gen::<f64>() * 10.0)),
        );
        hostile.push(("opposite corners".into(), bi));

        for (label, pts) in &hostile {
            for target in [1usize, 4, 16] {
                let grid = GridIndex::build(pts, target);
                let bbox = BBox::of(pts.iter());
                for _ in 0..120 {
                    // queries biased across and beyond the whole bbox
                    let q = Point::new(
                        bbox.min.x + (rng.gen::<f64>() * 1.2 - 0.1) * bbox.width().max(1.0),
                        bbox.min.y + (rng.gen::<f64>() * 1.2 - 0.1) * bbox.height().max(1.0),
                    );
                    let (gi, gd) = grid.nearest(&q);
                    let (_, ld) = nearest_linear(pts, &q);
                    assert!(
                        (gd - ld).abs() < 1e-9,
                        "{label} (target {target}): query {q:?} grid {gd} (idx {gi}) vs linear {ld}"
                    );
                }
                // the indexed points themselves are the harshest probes
                for (i, p) in pts.iter().enumerate() {
                    let (_, gd) = grid.nearest(p);
                    assert!(
                        gd < 1e-9,
                        "{label} (target {target}): self-query {i} → {gd}"
                    );
                }
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_queries() {
        let pts = random_points(8, 120);
        let grid = GridIndex::build(&pts, 6);
        let json = serde_json::to_string(&grid).unwrap();
        let back: GridIndex = serde_json::from_str(&json).unwrap();
        let q = Point::new(12.0, 34.0);
        assert_eq!(grid.nearest(&q).0, back.nearest(&q).0);
        assert_eq!(grid.shape(), back.shape());
    }
}
