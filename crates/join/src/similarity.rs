//! Pairwise trajectory-to-trajectory similarity.
//!
//! The join matches *pairs of trajectories* rather than a query against a
//! trajectory, so the measure must be **symmetric** (the UOTS query
//! similarity is one-sided). Following the paper family's join formulation,
//! each trajectory contributes a *half similarity* — the mean distance
//! decay from its samples to the other trajectory — and the two halves are
//! averaged:
//!
//! ```text
//! half_S(τ1→τ2) = (1/|τ1|) Σ_{v ∈ τ1} e^(−d(v.p, τ2) / decay_km)
//! Sim_S(τ1,τ2)  = (half_S(τ1→τ2) + half_S(τ2→τ1)) / 2          ∈ [0, 1]
//! half_T / Sim_T analogously over |t − t'| with decay_s
//! Sim(τ1,τ2)    = λ·Sim_S + (1−λ)·Sim_T                         ∈ [0, 1]
//! ```
//!
//! (The family's join writes the sum of halves with range `[0, 2]` and
//! thresholds `θ ∈ [0, 2]`; dividing by two keeps this workspace's `[0, 1]`
//! convention. The orderings are identical.)

use crate::JoinConfig;
use uots_network::dijkstra::ShortestPathTree;
use uots_trajectory::Trajectory;

/// The two half-contributions of one trajectory toward a pair similarity
/// (already weighted by λ; summing the two directions yields the pair's
/// similarity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Half {
    /// `λ · half_S / 2`.
    pub spatial: f64,
    /// `(1 − λ) · half_T / 2`.
    pub temporal: f64,
}

impl Half {
    /// The half's total contribution.
    #[inline]
    pub fn value(&self) -> f64 {
        self.spatial + self.temporal
    }
}

/// Exact half similarity of `from` toward `to`, given one shortest-path
/// tree per *distinct* vertex of `from` (aligned with
/// [`distinct_nodes_weighted`]'s order).
///
/// Used by the brute-force oracle; the join search derives the same halves
/// incrementally from its expansions.
pub fn exact_half(
    cfg: &JoinConfig,
    trees: &[ShortestPathTree],
    weights: &[f64],
    from: &Trajectory,
    to: &Trajectory,
) -> Half {
    debug_assert_eq!(trees.len(), weights.len());
    // spatial: weighted mean over from's distinct vertices of e^(-d(v, to))
    let mut half_s = 0.0;
    for (tree, &w) in trees.iter().zip(weights) {
        let d = to
            .nodes()
            .map(|u| tree.distance(u).unwrap_or(f64::INFINITY))
            .fold(f64::INFINITY, f64::min);
        half_s += w * (-d / cfg.decay_km).exp();
    }
    // temporal: mean over from's samples of e^(-min |t - t'|)
    let mut half_t = 0.0;
    for t in from.times() {
        let dt = to
            .times()
            .map(|u| (t - u).abs())
            .fold(f64::INFINITY, f64::min);
        half_t += (-dt / cfg.decay_s).exp();
    }
    half_t /= from.len() as f64;
    Half {
        spatial: cfg.lambda * half_s / 2.0,
        temporal: (1.0 - cfg.lambda) * half_t / 2.0,
    }
}

/// The distinct vertices of a trajectory with their sample-count weights
/// (weights sum to 1). A trajectory revisiting a vertex contributes that
/// vertex's decay once per visit in `half_S`; grouping by vertex keeps the
/// expansion source count equal to the *distinct* vertex count.
pub fn distinct_nodes_weighted(t: &Trajectory) -> (Vec<uots_network::NodeId>, Vec<f64>) {
    let mut pairs: Vec<(uots_network::NodeId, usize)> = Vec::new();
    for v in t.nodes() {
        match pairs.iter_mut().find(|(u, _)| *u == v) {
            Some((_, c)) => *c += 1,
            None => pairs.push((v, 1)),
        }
    }
    let total = t.len() as f64;
    let nodes = pairs.iter().map(|(v, _)| *v).collect();
    let weights = pairs.iter().map(|(_, c)| *c as f64 / total).collect();
    (nodes, weights)
}

/// The distinct timestamps of a trajectory with sample-count weights
/// (sum 1), for the temporal expansions.
pub fn distinct_times_weighted(t: &Trajectory) -> (Vec<f64>, Vec<f64>) {
    let mut pairs: Vec<(f64, usize)> = Vec::new();
    for ts in t.times() {
        match pairs.iter_mut().find(|(u, _)| *u == ts) {
            Some((_, c)) => *c += 1,
            None => pairs.push((ts, 1)),
        }
    }
    let total = t.len() as f64;
    let times = pairs.iter().map(|(v, _)| *v).collect();
    let weights = pairs.iter().map(|(_, c)| *c as f64 / total).collect();
    (times, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_network::dijkstra::shortest_path_tree;
    use uots_network::generators::{grid_city, GridCityConfig};
    use uots_network::NodeId;
    use uots_text::KeywordSet;
    use uots_trajectory::Sample;

    fn traj(nodes: &[u32], t0: f64) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: t0 + 60.0 * i as f64,
                })
                .collect(),
            KeywordSet::empty(),
        )
        .unwrap()
    }

    fn halves(
        cfg: &JoinConfig,
        net: &uots_network::RoadNetwork,
        a: &Trajectory,
        b: &Trajectory,
    ) -> (Half, Half) {
        let (na, wa) = distinct_nodes_weighted(a);
        let (nb, wb) = distinct_nodes_weighted(b);
        let ta: Vec<_> = na.iter().map(|&v| shortest_path_tree(net, v)).collect();
        let tb: Vec<_> = nb.iter().map(|&v| shortest_path_tree(net, v)).collect();
        (
            exact_half(cfg, &ta, &wa, a, b),
            exact_half(cfg, &tb, &wb, b, a),
        )
    }

    #[test]
    fn identical_trajectories_have_similarity_one() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let cfg = JoinConfig::default();
        let a = traj(&[0, 1, 2], 1_000.0);
        let (h1, h2) = halves(&cfg, &net, &a, &a);
        assert!((h1.value() + h2.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
        let cfg = JoinConfig::default();
        let a = traj(&[0, 1, 2, 1], 1_000.0);
        let b = traj(&[14, 20, 21], 3_000.0);
        let (h1, h2) = halves(&cfg, &net, &a, &b);
        let sim_ab = h1.value() + h2.value();
        let (g1, g2) = halves(&cfg, &net, &b, &a);
        let sim_ba = g1.value() + g2.value();
        assert!((sim_ab - sim_ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&sim_ab));
    }

    #[test]
    fn distinct_nodes_weights_sum_to_one_and_count_revisits() {
        let t = traj(&[3, 5, 3, 3], 0.0);
        let (nodes, weights) = distinct_nodes_weighted(&t);
        assert_eq!(nodes, vec![NodeId(3), NodeId(5)]);
        assert!((weights[0] - 0.75).abs() < 1e-12);
        assert!((weights[1] - 0.25).abs() < 1e-12);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_times_group_duplicates() {
        let t = Trajectory::new(
            vec![
                Sample {
                    node: NodeId(0),
                    time: 10.0,
                },
                Sample {
                    node: NodeId(1),
                    time: 10.0,
                },
                Sample {
                    node: NodeId(2),
                    time: 20.0,
                },
            ],
            KeywordSet::empty(),
        )
        .unwrap();
        let (times, weights) = distinct_times_weighted(&t);
        assert_eq!(times, vec![10.0, 20.0]);
        assert!((weights[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spatially_distant_pairs_decay_toward_temporal_only() {
        let net = grid_city(&GridCityConfig::tiny(12)).unwrap();
        let cfg = JoinConfig {
            decay_km: 0.5,
            ..Default::default()
        };
        let a = traj(&[0, 1], 1_000.0);
        let far = traj(&[142, 143], 1_000.0); // opposite corner
        let (h1, h2) = halves(&cfg, &net, &a, &far);
        let sim = h1.value() + h2.value();
        // temporal part is perfect (same departure), spatial nearly zero
        assert!(h1.spatial + h2.spatial < 0.01);
        assert!(sim < 0.55 && sim > 0.45);
    }
}
