//! Top-k similarity join — the paper family's stated future-work item #1
//! ("extend the existing algorithms to support a top-k TS-Join without a
//! threshold θ").
//!
//! Strategy: **iterative threshold deepening**. The threshold join is run
//! with a high θ; while it returns fewer than `k` pairs, θ is lowered
//! geometrically toward zero and the join re-run. Correctness is immediate
//! (the final run's pair set is the exact `≥ θ_final` set, a superset of
//! the true top-k), and the restart cost is bounded: thresholds decrease
//! geometrically, and the paper's own evaluation shows join cost grows as
//! θ falls, so the final run dominates the total — earlier runs are cheap
//! prefixes.
//!
//! A smarter single-pass top-k join would need cross-thread communication
//! to share the rising k-th-best bound (exactly the challenge the paper
//! flags); the restart scheme sidesteps it while reusing the verified
//! threshold join unchanged.

use crate::{ts_join, JoinConfig, JoinError, JoinPair, JoinResult};
use uots_index::{TimestampIndex, VertexInvertedIndex};
use uots_network::RoadNetwork;
use uots_trajectory::{TrajectoryId, TrajectoryStore};

/// Result of a top-k join: the pairs plus the number of threshold-join
/// rounds it took.
#[derive(Debug, Clone)]
pub struct TopKJoinResult {
    /// The `k` most similar pairs (fewer when the dataset has fewer pairs
    /// with positive similarity), best first.
    pub pairs: Vec<JoinPair>,
    /// Threshold-join rounds executed.
    pub rounds: usize,
    /// The final threshold used.
    pub final_theta: f64,
    /// Counters of the final (dominating) round.
    pub last_round: JoinResult,
}

/// Finds the `k` most similar trajectory pairs without a threshold.
///
/// `cfg.theta` is ignored (managed internally); all other configuration
/// fields apply.
///
/// # Errors
///
/// See [`JoinError`]; additionally rejects `k == 0`.
pub fn top_k_join(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    vertex_index: &VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &TimestampIndex<TrajectoryId>,
    cfg: &JoinConfig,
    k: usize,
    threads: usize,
) -> Result<TopKJoinResult, JoinError> {
    if k == 0 {
        return Err(JoinError::BadParameter("k must be at least 1".into()));
    }
    // θ schedule: 0.95, 0.9, 0.8, 0.6, 0.2, and a floor that returns every
    // pair with meaningfully positive similarity
    const FLOOR: f64 = 1e-6;
    let mut theta = 0.95;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let round_cfg = JoinConfig {
            theta,
            ..cfg.clone()
        };
        let result = ts_join(
            net,
            store,
            vertex_index,
            timestamp_index,
            &round_cfg,
            threads,
        )?;
        if result.pairs.len() >= k || theta <= FLOOR {
            let mut pairs = result.pairs.clone();
            pairs.truncate(k);
            return Ok(TopKJoinResult {
                pairs,
                rounds,
                final_theta: theta,
                last_round: result,
            });
        }
        // widen the admitted band geometrically
        let gap = 1.0 - theta;
        theta = (1.0 - gap * 2.0).max(FLOOR);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts_join_brute;
    use uots_datagen::{Dataset, DatasetConfig};

    fn setup() -> (Dataset, TimestampIndex<TrajectoryId>) {
        let ds = Dataset::build(&DatasetConfig::small(40, 51)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        (ds, tidx)
    }

    #[test]
    fn top_k_matches_the_exhaustive_ranking() {
        let (ds, tidx) = setup();
        let cfg = JoinConfig::default();
        for k in [1usize, 3, 10] {
            let got =
                top_k_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, &cfg, k, 2).unwrap();
            // oracle: all pairs above a tiny floor, ranked
            let all = ts_join_brute(
                &ds.network,
                &ds.store,
                &JoinConfig {
                    theta: 1e-6,
                    ..cfg.clone()
                },
            )
            .unwrap();
            assert_eq!(got.pairs.len(), k.min(all.len()));
            for (g, o) in got.pairs.iter().zip(all.iter()) {
                assert_eq!((g.a, g.b), (o.a, o.b), "k={k}");
                assert!((g.similarity - o.similarity).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn small_k_terminates_in_one_round_when_duplicates_exist() {
        use uots_text::KeywordSet;
        use uots_trajectory::{Sample, Trajectory};
        let (ds, _) = setup();
        let mut store = TrajectoryStore::new();
        let mk = |offset: u32| {
            Trajectory::new(
                (0..4)
                    .map(|i| Sample {
                        node: uots_network::NodeId(offset + i * 2),
                        time: 5_000.0 + 40.0 * i as f64,
                    })
                    .collect(),
                KeywordSet::empty(),
            )
            .unwrap()
        };
        store.push(mk(0));
        store.push(mk(0)); // exact duplicate → similarity 1.0
        store.push(mk(300));
        let vidx = store.build_vertex_index(ds.network.num_nodes());
        let tidx = store.build_timestamp_index();
        let got = top_k_join(
            &ds.network,
            &store,
            &vidx,
            &tidx,
            &JoinConfig::default(),
            1,
            1,
        )
        .unwrap();
        assert_eq!(got.rounds, 1);
        assert_eq!(got.pairs.len(), 1);
        assert!((got.pairs[0].similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_all_pairs_returns_everything() {
        let (ds, tidx) = setup();
        let got = top_k_join(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &JoinConfig::default(),
            100_000,
            2,
        )
        .unwrap();
        // ran down to the floor and returned every positive-similarity pair
        assert!(got.final_theta <= 1e-6);
        assert!(got.pairs.len() < 100_000);
        // ranking invariant
        for w in got.pairs.windows(2) {
            assert!(w[0].similarity >= w[1].similarity - 1e-12);
        }
    }

    #[test]
    fn zero_k_is_rejected() {
        let (ds, tidx) = setup();
        assert!(top_k_join(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &JoinConfig::default(),
            0,
            1
        )
        .is_err());
    }
}
