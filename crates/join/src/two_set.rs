//! Non-self join (`P ≠ Q`) — the paper family's §5 extension.
//!
//! Both sets run trajectory searches *against the other set's indexes*:
//! probes from `P` collect candidates in `Q` (with `P`-side halves) and
//! vice versa. A pair qualifies iff it appears in both directions, and its
//! exact similarity is again the sum of the two stored halves. Each side's
//! searches are independent, so both phases parallelize; the merge remains
//! a hash join.

use crate::search::{SearchStats, Worker};
use crate::similarity::Half;
use crate::{validate_config, JoinConfig, JoinError, JoinGate, JoinPair, JoinResult};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use uots_core::{Completeness, DistanceCache, ExecutionBudget, RunControl};
use uots_index::{TimestampIndex, VertexInvertedIndex};
use uots_network::RoadNetwork;
use uots_obs::{Phase, PhaseNanos};
use uots_trajectory::{TrajectoryId, TrajectoryStore};

/// One worker chunk's output: per-probe candidate lists + search stats.
type ChunkResults = (
    Vec<(TrajectoryId, Vec<crate::search::Candidate>)>,
    SearchStats,
);

/// One side of a non-self join: a trajectory set with its query-time
/// indexes (vertex → trajectory and sample-timestamp → trajectory).
#[derive(Clone, Copy)]
pub struct JoinSide<'a> {
    /// The trajectories of this side.
    pub store: &'a TrajectoryStore,
    /// vertex → trajectory index over `store`.
    pub vertex_index: &'a VertexInvertedIndex<TrajectoryId>,
    /// timestamp index over `store`.
    pub timestamp_index: &'a TimestampIndex<TrajectoryId>,
}

impl<'a> JoinSide<'a> {
    /// Bundles a store with its indexes. The indexes must have been built
    /// from this store over the same network passed to [`ts_join_two`].
    pub fn new(
        store: &'a TrajectoryStore,
        vertex_index: &'a VertexInvertedIndex<TrajectoryId>,
        timestamp_index: &'a TimestampIndex<TrajectoryId>,
    ) -> Self {
        JoinSide {
            store,
            vertex_index,
            timestamp_index,
        }
    }
}

/// A qualifying cross-set pair: `p` indexes into the `P` store, `q` into
/// the `Q` store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossPair {
    /// Trajectory in `P`.
    pub p: TrajectoryId,
    /// Trajectory in `Q`.
    pub q: TrajectoryId,
    /// Exact pair similarity, `≥ θ`.
    pub similarity: f64,
}

/// Result of a non-self join.
#[derive(Debug, Clone)]
pub struct CrossJoinResult {
    /// Qualifying pairs, descending similarity then ids.
    pub pairs: Vec<CrossPair>,
    /// Aggregate effort counters (both directions).
    pub visited_trajectories: usize,
    /// Vertices settled across all searches.
    pub settled_vertices: usize,
    /// Timestamps scanned across all searches.
    pub scanned_timestamps: usize,
    /// Candidates generated before merging.
    pub candidates: usize,
    /// Wall-clock time of the whole join.
    pub runtime: std::time::Duration,
    /// Macro-phase breakdown of `runtime`: both directed candidate
    /// searches count as [`Phase::NetworkExpansion`], the merge as
    /// [`Phase::JoinPair`].
    pub phases: PhaseNanos,
    /// [`Completeness::Exact`] when every probe of both directions ran;
    /// otherwise a conservative certificate (see
    /// [`crate::ts_join_with`] for the argument).
    pub completeness: Completeness,
}

fn run_side(
    net: &RoadNetwork,
    probes: &TrajectoryStore,
    targets: JoinSide<'_>,
    cfg: &JoinConfig,
    pool: &rayon::ThreadPool,
    gate: &JoinGate,
    cache: Option<&Arc<DistanceCache>>,
) -> Result<(Vec<HashMap<TrajectoryId, Half>>, SearchStats), JoinError> {
    for (id, t) in probes.iter() {
        let distinct = crate::similarity::distinct_nodes_weighted(t).0.len();
        if distinct > cfg.max_sources {
            return Err(JoinError::TooManySources {
                trajectory: id,
                sources: distinct,
            });
        }
    }
    let ids: Vec<TrajectoryId> = probes.ids().collect();
    let chunk = ids
        .len()
        .div_ceil(pool.current_num_threads().max(1) * 4)
        .max(1);
    let per_chunk: Vec<ChunkResults> = pool.install(|| {
        ids.par_chunks(chunk)
            .map(|probe_chunk| {
                let mut worker = Worker::new(
                    net,
                    targets.store,
                    targets.vertex_index,
                    targets.timestamp_index,
                    cache.cloned(),
                );
                let mut stats = SearchStats::default();
                let mut out = Vec::with_capacity(probe_chunk.len());
                for &probe in probe_chunk {
                    if !gate.admit() {
                        break;
                    }
                    let traj = probes.get(probe);
                    // cross-set: never skip any target id
                    let (cands, s) = worker.search_trajectory(cfg, traj, None);
                    gate.record(&s);
                    stats.visited += s.visited;
                    stats.settled_vertices += s.settled_vertices;
                    stats.scanned_timestamps += s.scanned_timestamps;
                    stats.candidates += s.candidates;
                    out.push((probe, cands));
                }
                (out, stats)
            })
            .collect()
    });
    let mut maps: Vec<HashMap<TrajectoryId, Half>> = vec![HashMap::new(); probes.len()];
    let mut totals = SearchStats::default();
    for (chunk_out, stats) in per_chunk {
        totals.visited += stats.visited;
        totals.settled_vertices += stats.settled_vertices;
        totals.scanned_timestamps += stats.scanned_timestamps;
        totals.candidates += stats.candidates;
        for (probe, cands) in chunk_out {
            let map = &mut maps[probe.index()];
            for c in cands {
                map.insert(c.other, c.half);
            }
        }
    }
    Ok((maps, totals))
}

/// The non-self trajectory similarity join between sets `P` and `Q` over
/// one shared road network, unbudgeted. Equivalent to [`ts_join_two_with`]
/// under an unlimited budget.
///
/// # Errors
///
/// See [`JoinError`].
pub fn ts_join_two(
    net: &RoadNetwork,
    p: JoinSide<'_>,
    q: JoinSide<'_>,
    cfg: &JoinConfig,
    threads: usize,
) -> Result<CrossJoinResult, JoinError> {
    ts_join_two_with(
        net,
        p,
        q,
        cfg,
        threads,
        &ExecutionBudget::UNLIMITED,
        &RunControl::unbounded(),
    )
}

/// The non-self join under a budget: probe-granularity interruption with
/// the same subset semantics and conservative `1 − θ` certificate as
/// [`crate::ts_join_with`]. The budget spans both probe directions.
///
/// # Errors
///
/// See [`JoinError`]. Budget exhaustion is **not** an error.
pub fn ts_join_two_with(
    net: &RoadNetwork,
    p: JoinSide<'_>,
    q: JoinSide<'_>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
) -> Result<CrossJoinResult, JoinError> {
    ts_join_two_inner(net, p, q, cfg, threads, budget, ctl, None)
}

/// [`ts_join_two_with`] with one shared [`DistanceCache`] **per probe
/// direction**: `caches.0` serves `P`'s probes (expansions from `P`'s
/// sample vertices), `caches.1` serves `Q`'s. Distances depend only on the
/// shared network, so the split is a sizing/locality choice, not a
/// correctness one — the pair set is identical to the uncached join
/// either way.
///
/// # Errors
///
/// See [`JoinError`].
#[allow(clippy::too_many_arguments)]
pub fn ts_join_two_cached(
    net: &RoadNetwork,
    p: JoinSide<'_>,
    q: JoinSide<'_>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
    caches: (&Arc<DistanceCache>, &Arc<DistanceCache>),
) -> Result<CrossJoinResult, JoinError> {
    ts_join_two_inner(net, p, q, cfg, threads, budget, ctl, Some(caches))
}

#[allow(clippy::too_many_arguments)]
fn ts_join_two_inner(
    net: &RoadNetwork,
    p: JoinSide<'_>,
    q: JoinSide<'_>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
    caches: Option<(&Arc<DistanceCache>, &Arc<DistanceCache>)>,
) -> Result<CrossJoinResult, JoinError> {
    validate_config(cfg)?;
    let start = Instant::now();
    let gate = JoinGate::new(budget, ctl);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .map_err(|e| JoinError::BadParameter(format!("thread pool: {e}")))?;

    // P probes against Q's indexes, and vice versa
    let mut phases = PhaseNanos::ZERO;
    let search_start = Instant::now();
    let (p_maps, p_stats) = run_side(net, p.store, q, cfg, &pool, &gate, caches.map(|c| c.0))?;
    let (q_maps, q_stats) = run_side(net, q.store, p, cfg, &pool, &gate, caches.map(|c| c.1))?;
    phases.add(
        Phase::NetworkExpansion,
        u64::try_from(search_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );

    let merge_start = Instant::now();
    let mut pairs = Vec::new();
    for pid in p.store.ids() {
        for (&qid, half_pq) in &p_maps[pid.index()] {
            if let Some(half_qp) = q_maps[qid.index()].get(&pid) {
                let sim = half_pq.value() + half_qp.value();
                if sim >= cfg.theta {
                    pairs.push(CrossPair {
                        p: pid,
                        q: qid,
                        similarity: sim,
                    });
                }
            }
        }
    }
    pairs.sort_by(|x, y| {
        y.similarity
            .total_cmp(&x.similarity)
            .then_with(|| x.p.cmp(&y.p))
            .then_with(|| x.q.cmp(&y.q))
    });

    phases.add(
        Phase::JoinPair,
        u64::try_from(merge_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );

    let completeness = if gate.tripped() {
        Completeness::BestEffort {
            bound_gap: (1.0 - cfg.theta).clamp(0.0, 1.0),
        }
    } else {
        Completeness::Exact
    };
    Ok(CrossJoinResult {
        pairs,
        visited_trajectories: p_stats.visited + q_stats.visited,
        settled_vertices: p_stats.settled_vertices + q_stats.settled_vertices,
        scanned_timestamps: p_stats.scanned_timestamps + q_stats.scanned_timestamps,
        candidates: p_stats.candidates + q_stats.candidates,
        runtime: start.elapsed(),
        phases,
        completeness,
    })
}

/// Exhaustive non-self oracle (tests and tiny inputs).
///
/// # Errors
///
/// See [`JoinError`].
pub fn ts_join_two_brute(
    net: &RoadNetwork,
    p: &TrajectoryStore,
    q: &TrajectoryStore,
    cfg: &JoinConfig,
) -> Result<Vec<CrossPair>, JoinError> {
    validate_config(cfg)?;
    use uots_network::dijkstra::shortest_path_tree;
    let mut pairs = Vec::new();
    // precompute per-trajectory trees once per side
    let p_pre: Vec<_> = p
        .iter()
        .map(|(_, t)| {
            let (nodes, weights) = crate::similarity::distinct_nodes_weighted(t);
            let trees: Vec<_> = nodes.iter().map(|&v| shortest_path_tree(net, v)).collect();
            (trees, weights)
        })
        .collect();
    let q_pre: Vec<_> = q
        .iter()
        .map(|(_, t)| {
            let (nodes, weights) = crate::similarity::distinct_nodes_weighted(t);
            let trees: Vec<_> = nodes.iter().map(|&v| shortest_path_tree(net, v)).collect();
            (trees, weights)
        })
        .collect();
    for (pid, tp) in p.iter() {
        for (qid, tq) in q.iter() {
            let (ptrees, pweights) = &p_pre[pid.index()];
            let (qtrees, qweights) = &q_pre[qid.index()];
            let sim = crate::similarity::exact_half(cfg, ptrees, pweights, tp, tq).value()
                + crate::similarity::exact_half(cfg, qtrees, qweights, tq, tp).value();
            if sim >= cfg.theta {
                pairs.push(CrossPair {
                    p: pid,
                    q: qid,
                    similarity: sim,
                });
            }
        }
    }
    pairs.sort_by(|x, y| {
        y.similarity
            .total_cmp(&x.similarity)
            .then_with(|| x.p.cmp(&y.p))
            .then_with(|| x.q.cmp(&y.q))
    });
    Ok(pairs)
}

impl From<CrossJoinResult> for JoinResult {
    /// Views a cross join as a generic join result (pair ids lose their
    /// set distinction; useful for uniform reporting).
    fn from(r: CrossJoinResult) -> JoinResult {
        JoinResult {
            pairs: r
                .pairs
                .iter()
                .map(|cp| JoinPair {
                    a: cp.p,
                    b: cp.q,
                    similarity: cp.similarity,
                })
                .collect(),
            visited_trajectories: r.visited_trajectories,
            settled_vertices: r.settled_vertices,
            scanned_timestamps: r.scanned_timestamps,
            candidates: r.candidates,
            runtime: r.runtime,
            phases: r.phases,
            completeness: r.completeness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_datagen::{Dataset, DatasetConfig};

    #[test]
    fn cross_join_matches_brute_force() {
        let ds = Dataset::build(&DatasetConfig::small(30, 23)).unwrap();
        // split the one store into P (even ids) and Q (odd ids)
        let mut p = TrajectoryStore::new();
        let mut q = TrajectoryStore::new();
        for (id, t) in ds.store.iter() {
            if id.0 % 2 == 0 {
                p.push(t.clone());
            } else {
                q.push(t.clone());
            }
        }
        let pv = p.build_vertex_index(ds.network.num_nodes());
        let pt = p.build_timestamp_index();
        let qv = q.build_vertex_index(ds.network.num_nodes());
        let qt = q.build_timestamp_index();
        for theta in [0.5, 0.7, 0.9] {
            let cfg = JoinConfig {
                theta,
                ..Default::default()
            };
            let fast = ts_join_two(
                &ds.network,
                JoinSide::new(&p, &pv, &pt),
                JoinSide::new(&q, &qv, &qt),
                &cfg,
                2,
            )
            .unwrap();
            let brute = ts_join_two_brute(&ds.network, &p, &q, &cfg).unwrap();
            assert_eq!(fast.pairs.len(), brute.len(), "θ={theta}");
            for (f, b) in fast.pairs.iter().zip(brute.iter()) {
                assert_eq!((f.p, f.q), (b.p, b.q));
                assert!((f.similarity - b.similarity).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn self_join_as_cross_join_of_identical_sets_contains_diagonal() {
        // joining a set with itself must report every trajectory paired
        // with itself at similarity 1 (the cross join has no self-exclusion)
        let ds = Dataset::build(&DatasetConfig::small(8, 29)).unwrap();
        let v = ds.store.build_vertex_index(ds.network.num_nodes());
        let t = ds.store.build_timestamp_index();
        let side = JoinSide::new(&ds.store, &v, &t);
        let cfg = JoinConfig {
            theta: 0.999,
            ..Default::default()
        };
        let r = ts_join_two(&ds.network, side, side, &cfg, 1).unwrap();
        let diagonal = r.pairs.iter().filter(|p| p.p == p.q).count();
        assert_eq!(diagonal, ds.store.len());
        for p in r.pairs.iter().filter(|p| p.p == p.q) {
            assert!((p.similarity - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn conversion_to_join_result() {
        let ds = Dataset::build(&DatasetConfig::small(6, 31)).unwrap();
        let v = ds.store.build_vertex_index(ds.network.num_nodes());
        let t = ds.store.build_timestamp_index();
        let side = JoinSide::new(&ds.store, &v, &t);
        let cfg = JoinConfig {
            theta: 0.9,
            ..Default::default()
        };
        let cross = ts_join_two(&ds.network, side, side, &cfg, 1).unwrap();
        assert!(cross.phases.nanos(Phase::NetworkExpansion) > 0);
        assert!(cross.phases.total() <= cross.runtime);
        let n = cross.pairs.len();
        let phase_total = cross.phases.total();
        let generic: JoinResult = cross.into();
        assert_eq!(generic.pairs.len(), n);
        assert_eq!(generic.phases.total(), phase_total);
    }

    #[test]
    fn budgeted_cross_join_returns_a_certified_subset() {
        let ds = Dataset::build(&DatasetConfig::small(40, 41)).unwrap();
        let v = ds.store.build_vertex_index(ds.network.num_nodes());
        let t = ds.store.build_timestamp_index();
        let side = JoinSide::new(&ds.store, &v, &t);
        let cfg = JoinConfig {
            theta: 0.6,
            ..Default::default()
        };
        let exact = ts_join_two(&ds.network, side, side, &cfg, 1).unwrap();
        assert!(exact.completeness.is_exact());
        let exact_set: std::collections::HashSet<(TrajectoryId, TrajectoryId)> =
            exact.pairs.iter().map(|x| (x.p, x.q)).collect();
        let budget =
            ExecutionBudget::default().with_max_visited(exact.visited_trajectories / 4 + 1);
        let r = ts_join_two_with(
            &ds.network,
            side,
            side,
            &cfg,
            1,
            &budget,
            &RunControl::unbounded(),
        )
        .unwrap();
        assert!(!r.completeness.is_exact());
        assert!((r.completeness.bound_gap() - (1.0 - cfg.theta)).abs() < 1e-12);
        for x in &r.pairs {
            assert!(exact_set.contains(&(x.p, x.q)), "subset semantics");
        }
    }

    #[test]
    fn cached_cross_join_matches_uncached() {
        let ds = Dataset::build(&DatasetConfig::small(30, 43)).unwrap();
        let mut p = TrajectoryStore::new();
        let mut q = TrajectoryStore::new();
        for (id, t) in ds.store.iter() {
            if id.0 % 2 == 0 {
                p.push(t.clone());
            } else {
                q.push(t.clone());
            }
        }
        let pv = p.build_vertex_index(ds.network.num_nodes());
        let pt = p.build_timestamp_index();
        let qv = q.build_vertex_index(ds.network.num_nodes());
        let qt = q.build_timestamp_index();
        let cfg = JoinConfig {
            theta: 0.6,
            ..Default::default()
        };
        let plain = ts_join_two(
            &ds.network,
            JoinSide::new(&p, &pv, &pt),
            JoinSide::new(&q, &qv, &qt),
            &cfg,
            2,
        )
        .unwrap();
        let p_cache = Arc::new(DistanceCache::new(1 << 16));
        let q_cache = Arc::new(DistanceCache::new(1 << 16));
        let cached = ts_join_two_cached(
            &ds.network,
            JoinSide::new(&p, &pv, &pt),
            JoinSide::new(&q, &qv, &qt),
            &cfg,
            2,
            &ExecutionBudget::UNLIMITED,
            &RunControl::unbounded(),
            (&p_cache, &q_cache),
        )
        .unwrap();
        assert_eq!(plain.pairs.len(), cached.pairs.len());
        for (a, b) in plain.pairs.iter().zip(cached.pairs.iter()) {
            assert_eq!((a.p, a.q), (b.p, b.q));
            assert_eq!(a.similarity.to_bits(), b.similarity.to_bits());
        }
        assert!(p_cache.stats().inserts > 0);
        assert!(q_cache.stats().inserts > 0);
    }

    #[test]
    fn empty_q_set_yields_no_pairs() {
        let ds = Dataset::build(&DatasetConfig::small(5, 37)).unwrap();
        let v = ds.store.build_vertex_index(ds.network.num_nodes());
        let t = ds.store.build_timestamp_index();
        let empty = TrajectoryStore::new();
        let ev = empty.build_vertex_index(ds.network.num_nodes());
        let et = empty.build_timestamp_index();
        let cfg = JoinConfig::default();
        let r = ts_join_two(
            &ds.network,
            JoinSide::new(&ds.store, &v, &t),
            JoinSide::new(&empty, &ev, &et),
            &cfg,
            1,
        )
        .unwrap();
        assert!(r.pairs.is_empty());
    }
}
