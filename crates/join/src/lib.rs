//! # uots-join
//!
//! Trajectory similarity **threshold self-join** in spatial networks — the
//! companion operation of the UOTS search and this reproduction's
//! implementation of the paper family's stated follow-on direction: given a
//! set `P` of network-constrained, timestamped trajectories and a threshold
//! `θ`, return every pair `(τ₁, τ₂)` whose symmetric spatiotemporal
//! similarity (see [`similarity`]) reaches `θ`.
//!
//! Applications (from the paper family): trajectory near-duplicate
//! detection and data cleaning, ridesharing / carpooling partner
//! recommendation, frequent-route mining and congestion prediction.
//!
//! ## Algorithm — two-phase divide and conquer
//!
//! 1. **Trajectory-search phase** (parallel over probes, rayon): for each
//!    trajectory τ, a [`search`](crate::search) worker expands the network
//!    from every distinct sample vertex of τ and the time axis from every
//!    distinct timestamp, pruning with per-pair upper bounds (first half
//!    exact or radius-bounded, second half bounded by the paper's Lemma-1
//!    trick) and collecting **candidates**: partners whose bound reaches θ,
//!    each carrying τ's exact directed *half* of the pair similarity.
//! 2. **Merging phase** (hash join, cost independent of the thread count):
//!    a pair qualifies iff each side appears in the other's candidate set;
//!    its exact similarity is simply the sum of the two stored halves — no
//!    further network distances are computed.
//!
//! ```
//! use uots_datagen::{Dataset, DatasetConfig};
//! use uots_join::{ts_join, JoinConfig};
//!
//! let ds = Dataset::build(&DatasetConfig::small(60, 5)).unwrap();
//! let tidx = ds.store.build_timestamp_index();
//! let cfg = JoinConfig { theta: 0.6, ..Default::default() };
//! let result = ts_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, &cfg, 2).unwrap();
//! for p in &result.pairs {
//!     assert!(p.similarity >= 0.6);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod search;
pub mod similarity;
pub mod topk;
pub mod two_set;

use rayon::prelude::*;
use search::{SearchStats, Worker};
use serde::{Deserialize, Serialize};
use similarity::Half;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uots_core::{Completeness, DistanceCache, ExecutionBudget, RunControl};
use uots_index::{TimestampIndex, VertexInvertedIndex};
use uots_network::dijkstra::shortest_path_tree;
use uots_network::RoadNetwork;
use uots_obs::{MetricsRegistry, Phase, PhaseNanos};
use uots_trajectory::{TrajectoryId, TrajectoryStore};

/// Join configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinConfig {
    /// Similarity threshold `θ ∈ (0, 1]`. (The paper family's `[0, 2]`
    /// range maps to this via division by two.)
    pub theta: f64,
    /// Spatial/temporal preference `λ ∈ [0, 1]`.
    pub lambda: f64,
    /// Spatial decay scale, kilometres.
    pub decay_km: f64,
    /// Temporal decay scale, seconds.
    pub decay_s: f64,
    /// Source scheduling within one trajectory search.
    pub scheduling: JoinScheduling,
    /// Upper limit on distinct sample vertices per trajectory (each one is
    /// a concurrent expansion with network-sized scratch). Trajectories
    /// exceeding it are rejected with [`JoinError::TooManySources`].
    pub max_sources: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            theta: 0.8,
            lambda: 0.5,
            decay_km: 1.0,
            decay_s: 1_800.0,
            scheduling: JoinScheduling::RoundRobin,
            max_sources: 128,
        }
    }
}

/// Expansion-source scheduling inside one trajectory search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinScheduling {
    /// Cycle through live sources (default).
    RoundRobin,
    /// Advance the source with the smallest normalized radius.
    MinRadius,
}

/// One qualifying pair, `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinPair {
    /// The smaller trajectory id.
    pub a: TrajectoryId,
    /// The larger trajectory id.
    pub b: TrajectoryId,
    /// Exact pair similarity, `≥ θ`.
    pub similarity: f64,
}

/// Join output: pairs plus effort counters.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Qualifying pairs, sorted by descending similarity then ids.
    pub pairs: Vec<JoinPair>,
    /// Total trajectories visited across all searches.
    pub visited_trajectories: usize,
    /// Total vertices settled across all searches.
    pub settled_vertices: usize,
    /// Total timestamps scanned across all searches.
    pub scanned_timestamps: usize,
    /// Total candidates generated (pre-merge).
    pub candidates: usize,
    /// Wall-clock time of the whole join.
    pub runtime: Duration,
    /// Macro-phase breakdown of `runtime`: the parallel candidate-search
    /// phase is attributed to [`Phase::NetworkExpansion`], the merge and
    /// pair-formation phase to [`Phase::JoinPair`]. Always populated — the
    /// cost is two timestamps per join.
    pub phases: PhaseNanos,
    /// [`Completeness::Exact`] when every probe ran to completion;
    /// otherwise a conservative certificate (see [`ts_join_with`]).
    pub completeness: Completeness,
}

/// Thread-safe interruption checker for the join's search phase. Probes
/// are coarse units of work (each expands a whole trajectory), so the gate
/// is consulted once per probe: cheap relative to the probe itself, and a
/// skipped probe only *removes* pairs — budgeted joins return a subset of
/// the exact answer.
pub(crate) struct JoinGate {
    token: uots_core::CancellationToken,
    deadline: Option<Instant>,
    max_visited: usize,
    max_settled: usize,
    visited: AtomicUsize,
    settled: AtomicUsize,
    tripped: AtomicBool,
}

impl JoinGate {
    pub(crate) fn new(budget: &ExecutionBudget, ctl: &RunControl) -> Self {
        let budget_deadline = budget.max_wall.map(|w| Instant::now() + w);
        let deadline = match (ctl.deadline(), budget_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        JoinGate {
            token: ctl.token().clone(),
            deadline,
            max_visited: budget.max_visited.unwrap_or(usize::MAX),
            max_settled: budget.max_settled.unwrap_or(usize::MAX),
            visited: AtomicUsize::new(0),
            settled: AtomicUsize::new(0),
            tripped: AtomicBool::new(ctl.is_cancelled()),
        }
    }

    /// Whether the next probe may run. Trips (stickily, across all
    /// workers) on cancellation, deadline expiry, or exhausted counters.
    pub(crate) fn admit(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return false;
        }
        let over = self.visited.load(Ordering::Relaxed) >= self.max_visited
            || self.settled.load(Ordering::Relaxed) >= self.max_settled
            || self.token.is_cancelled()
            || self.deadline.is_some_and(|d| Instant::now() >= d);
        if over {
            self.tripped.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Folds one probe's effort into the shared counters.
    pub(crate) fn record(&self, stats: &SearchStats) {
        self.visited.fetch_add(stats.visited, Ordering::Relaxed);
        self.settled.fetch_add(
            stats.settled_vertices + stats.scanned_timestamps,
            Ordering::Relaxed,
        );
    }

    pub(crate) fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

/// Errors from [`ts_join`].
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// θ or λ or a decay scale failed validation.
    BadParameter(String),
    /// A trajectory has more distinct sample vertices than
    /// [`JoinConfig::max_sources`].
    TooManySources {
        /// The offending trajectory.
        trajectory: TrajectoryId,
        /// Its distinct-vertex count.
        sources: usize,
    },
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::BadParameter(m) => write!(f, "bad join parameter: {m}"),
            JoinError::TooManySources {
                trajectory,
                sources,
            } => write!(
                f,
                "trajectory {trajectory} has {sources} distinct vertices; raise max_sources"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

/// Validates the numeric configuration (shared with the non-self join).
pub(crate) fn validate_config(cfg: &JoinConfig) -> Result<(), JoinError> {
    if !(cfg.theta > 0.0 && cfg.theta <= 1.0) {
        return Err(JoinError::BadParameter(format!(
            "theta must be in (0, 1], got {}",
            cfg.theta
        )));
    }
    if !(0.0..=1.0).contains(&cfg.lambda) {
        return Err(JoinError::BadParameter(format!(
            "lambda must be in [0, 1], got {}",
            cfg.lambda
        )));
    }
    if cfg.decay_km <= 0.0 || cfg.decay_km.is_nan() || cfg.decay_s <= 0.0 || cfg.decay_s.is_nan() {
        return Err(JoinError::BadParameter(
            "decay scales must be positive".into(),
        ));
    }
    Ok(())
}

fn validate(cfg: &JoinConfig, store: &TrajectoryStore) -> Result<(), JoinError> {
    validate_config(cfg)?;
    for (id, t) in store.iter() {
        let distinct = similarity::distinct_nodes_weighted(t).0.len();
        if distinct > cfg.max_sources {
            return Err(JoinError::TooManySources {
                trajectory: id,
                sources: distinct,
            });
        }
    }
    Ok(())
}

/// The two-phase trajectory similarity self-join, unbudgeted.
///
/// `threads` sizes the rayon pool for the search phase (`1` = sequential).
/// Equivalent to [`ts_join_with`] under an unlimited budget; the result is
/// always [`Completeness::Exact`].
///
/// # Errors
///
/// See [`JoinError`].
pub fn ts_join(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    vertex_index: &VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &TimestampIndex<TrajectoryId>,
    cfg: &JoinConfig,
    threads: usize,
) -> Result<JoinResult, JoinError> {
    ts_join_with(
        net,
        store,
        vertex_index,
        timestamp_index,
        cfg,
        threads,
        &ExecutionBudget::UNLIMITED,
        &RunControl::unbounded(),
    )
}

/// The two-phase trajectory similarity self-join under a budget.
///
/// The gate is consulted before each probe (one probe = one trajectory's
/// candidate search): on cancellation, deadline expiry, or an exhausted
/// counter, remaining probes are skipped across all workers. A skipped
/// probe can only *remove* pairs, so the budgeted answer is a **subset**
/// of the exact one and every reported pair's similarity is still exact
/// and `≥ θ`. The completeness certificate is conservative: a missed pair
/// exceeds `θ` by at most `1 − θ`, hence
/// `BestEffort { bound_gap: 1 − θ }` whenever any probe was skipped.
///
/// # Errors
///
/// See [`JoinError`]. Budget exhaustion is **not** an error.
#[allow(clippy::too_many_arguments)]
pub fn ts_join_with(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    vertex_index: &VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &TimestampIndex<TrajectoryId>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
) -> Result<JoinResult, JoinError> {
    ts_join_inner(
        net,
        store,
        vertex_index,
        timestamp_index,
        cfg,
        threads,
        budget,
        ctl,
        None,
    )
}

/// [`ts_join_with`] sharing one [`DistanceCache`] across every search
/// worker: each probe's spatial expansions replay cached prefixes and
/// publish their own back, so trajectories sharing sample vertices (the
/// common case — popular POIs) skip the shared head of each other's
/// Dijkstra work. The pair set is **identical** to the uncached join; the
/// cache trades settled-vertex work, never answers.
///
/// # Errors
///
/// See [`JoinError`].
#[allow(clippy::too_many_arguments)]
pub fn ts_join_cached(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    vertex_index: &VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &TimestampIndex<TrajectoryId>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
    cache: &Arc<DistanceCache>,
) -> Result<JoinResult, JoinError> {
    ts_join_inner(
        net,
        store,
        vertex_index,
        timestamp_index,
        cfg,
        threads,
        budget,
        ctl,
        Some(cache),
    )
}

#[allow(clippy::too_many_arguments)]
fn ts_join_inner(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    vertex_index: &VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &TimestampIndex<TrajectoryId>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
    cache: Option<&Arc<DistanceCache>>,
) -> Result<JoinResult, JoinError> {
    validate(cfg, store)?;
    let start = Instant::now();
    let ids: Vec<TrajectoryId> = store.ids().collect();
    let gate = JoinGate::new(budget, ctl);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .map_err(|e| JoinError::BadParameter(format!("thread pool: {e}")))?;

    // --- phase 1: per-trajectory candidate searches (parallel) ---
    // Chunk the probes so each worker reuses its expansion scratch across
    // many searches instead of reallocating network-sized buffers.
    let mut phases = PhaseNanos::ZERO;
    let search_start = Instant::now();
    let chunk = ids.len().div_ceil(threads.max(1) * 4).max(1);
    type ChunkOut = (Vec<(TrajectoryId, Vec<search::Candidate>)>, SearchStats);
    let per_chunk: Vec<ChunkOut> = pool.install(|| {
        ids.par_chunks(chunk)
            .map(|probe_chunk| {
                let mut worker =
                    Worker::new(net, store, vertex_index, timestamp_index, cache.cloned());
                let mut stats = SearchStats::default();
                let mut out = Vec::with_capacity(probe_chunk.len());
                for &probe in probe_chunk {
                    if !gate.admit() {
                        break;
                    }
                    let (cands, s) = worker.search(cfg, probe);
                    gate.record(&s);
                    stats.visited += s.visited;
                    stats.settled_vertices += s.settled_vertices;
                    stats.scanned_timestamps += s.scanned_timestamps;
                    stats.candidates += s.candidates;
                    out.push((probe, cands));
                }
                (out, stats)
            })
            .collect()
    });

    phases.add(
        Phase::NetworkExpansion,
        u64::try_from(search_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );

    // --- phase 2: merge (constant relative to thread count) ---
    let merge_start = Instant::now();
    let mut candidate_maps: Vec<HashMap<TrajectoryId, Half>> = vec![HashMap::new(); store.len()];
    let mut totals = SearchStats::default();
    for (chunk_out, stats) in per_chunk {
        totals.visited += stats.visited;
        totals.settled_vertices += stats.settled_vertices;
        totals.scanned_timestamps += stats.scanned_timestamps;
        totals.candidates += stats.candidates;
        for (probe, cands) in chunk_out {
            let map = &mut candidate_maps[probe.index()];
            for c in cands {
                map.insert(c.other, c.half);
            }
        }
    }

    let mut pairs = Vec::new();
    for &a in &ids {
        for (&b, half_ab) in &candidate_maps[a.index()] {
            if b <= a {
                continue; // each unordered pair handled once, from its smaller id
            }
            if let Some(half_ba) = candidate_maps[b.index()].get(&a) {
                let sim = half_ab.value() + half_ba.value();
                if sim >= cfg.theta {
                    pairs.push(JoinPair {
                        a,
                        b,
                        similarity: sim,
                    });
                }
            }
        }
    }
    pairs.sort_by(|x, y| {
        y.similarity
            .total_cmp(&x.similarity)
            .then_with(|| x.a.cmp(&y.a))
            .then_with(|| x.b.cmp(&y.b))
    });

    phases.add(
        Phase::JoinPair,
        u64::try_from(merge_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );

    let completeness = if gate.tripped() {
        Completeness::BestEffort {
            bound_gap: (1.0 - cfg.theta).clamp(0.0, 1.0),
        }
    } else {
        Completeness::Exact
    };
    Ok(JoinResult {
        pairs,
        visited_trajectories: totals.visited,
        settled_vertices: totals.settled_vertices,
        scanned_timestamps: totals.scanned_timestamps,
        candidates: totals.candidates,
        runtime: start.elapsed(),
        phases,
        completeness,
    })
}

/// [`ts_join_with`], additionally recording the outcome into `registry`:
/// per-phase duration histograms (`uots_join_phase_duration_ns`, labeled by
/// phase), a whole-join latency histogram (`uots_join_latency_us`), and
/// counters for pairs emitted, candidates generated, trajectories visited,
/// and interrupted joins. Use one registry across many joins to accumulate
/// quantiles; export with
/// [`MetricsRegistry::render_prometheus`] or
/// [`MetricsRegistry::render_json`].
///
/// # Errors
///
/// See [`JoinError`].
#[allow(clippy::too_many_arguments)]
pub fn ts_join_instrumented(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    vertex_index: &VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &TimestampIndex<TrajectoryId>,
    cfg: &JoinConfig,
    threads: usize,
    budget: &ExecutionBudget,
    ctl: &RunControl,
    registry: &MetricsRegistry,
) -> Result<JoinResult, JoinError> {
    let r = ts_join_with(
        net,
        store,
        vertex_index,
        timestamp_index,
        cfg,
        threads,
        budget,
        ctl,
    )?;
    record_join_metrics(registry, &r);
    Ok(r)
}

/// Records a finished join's outcome into `registry` — the same counters and
/// histograms [`ts_join_instrumented`] emits. Use when the join itself ran
/// through another entry point (e.g. [`ts_join_cached`]) but the metrics
/// should still land in a shared registry.
pub fn record_join_metrics(registry: &MetricsRegistry, r: &JoinResult) {
    registry
        .counter("uots_join_pairs_total", "Qualifying pairs emitted by joins")
        .add(r.pairs.len() as u64);
    registry
        .counter(
            "uots_join_candidates_total",
            "Candidates generated by join searches (pre-merge)",
        )
        .add(r.candidates as u64);
    registry
        .counter(
            "uots_join_visited_trajectories_total",
            "Trajectories visited by join searches",
        )
        .add(r.visited_trajectories as u64);
    if !r.completeness.is_exact() {
        registry
            .counter(
                "uots_join_interrupted_total",
                "Joins interrupted by budget, deadline, or cancellation",
            )
            .inc();
    }
    registry
        .histogram("uots_join_latency_us", "Whole-join wall time, microseconds")
        .record(u64::try_from(r.runtime.as_micros()).unwrap_or(u64::MAX));
    registry.observe_phases(
        "uots_join_phase_duration_ns",
        "Join macro-phase durations, nanoseconds",
        &r.phases,
    );
}

/// Exhaustive oracle: evaluates every pair exactly. `O(|P|)` shortest-path
/// trees per trajectory vertex plus `O(|P|²)` evaluations — tests and tiny
/// datasets only.
pub fn ts_join_brute(
    net: &RoadNetwork,
    store: &TrajectoryStore,
    cfg: &JoinConfig,
) -> Result<Vec<JoinPair>, JoinError> {
    validate(cfg, store)?;
    let ids: Vec<TrajectoryId> = store.ids().collect();
    // one directed half per trajectory toward every other
    let halves: Vec<Vec<Half>> = ids
        .iter()
        .map(|&a| {
            let ta = store.get(a);
            let (nodes, weights) = similarity::distinct_nodes_weighted(ta);
            let trees: Vec<_> = nodes.iter().map(|&v| shortest_path_tree(net, v)).collect();
            ids.iter()
                .map(|&b| similarity::exact_half(cfg, &trees, &weights, ta, store.get(b)))
                .collect()
        })
        .collect();
    let mut pairs = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for (j, &b) in ids.iter().enumerate().skip(i + 1) {
            let sim = halves[i][j].value() + halves[j][i].value();
            if sim >= cfg.theta {
                pairs.push(JoinPair {
                    a,
                    b,
                    similarity: sim,
                });
            }
        }
    }
    pairs.sort_by(|x, y| {
        y.similarity
            .total_cmp(&x.similarity)
            .then_with(|| x.a.cmp(&y.a))
            .then_with(|| x.b.cmp(&y.b))
    });
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_datagen::{Dataset, DatasetConfig};

    fn join_all(ds: &Dataset, cfg: &JoinConfig, threads: usize) -> JoinResult {
        let tidx = ds.store.build_timestamp_index();
        ts_join(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            cfg,
            threads,
        )
        .expect("join runs")
    }

    #[test]
    fn join_matches_brute_force_across_thetas_and_lambdas() {
        let ds = Dataset::build(&DatasetConfig::small(40, 13)).unwrap();
        for theta in [0.5, 0.7, 0.9] {
            for lambda in [0.2, 0.5, 0.8] {
                let cfg = JoinConfig {
                    theta,
                    lambda,
                    ..Default::default()
                };
                let fast = join_all(&ds, &cfg, 1);
                let brute = ts_join_brute(&ds.network, &ds.store, &cfg).unwrap();
                assert_eq!(
                    fast.pairs.len(),
                    brute.len(),
                    "θ={theta} λ={lambda}: {:?} vs {:?}",
                    fast.pairs,
                    brute
                );
                for (f, b) in fast.pairs.iter().zip(brute.iter()) {
                    assert_eq!((f.a, f.b), (b.a, b.b), "θ={theta} λ={lambda}");
                    assert!((f.similarity - b.similarity).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_join_equals_sequential() {
        let ds = Dataset::build(&DatasetConfig::small(60, 14)).unwrap();
        let cfg = JoinConfig {
            theta: 0.6,
            ..Default::default()
        };
        let a = join_all(&ds, &cfg, 1);
        let b = join_all(&ds, &cfg, 4);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.visited_trajectories, b.visited_trajectories);
    }

    #[test]
    fn larger_theta_yields_subset() {
        let ds = Dataset::build(&DatasetConfig::small(50, 15)).unwrap();
        let low = join_all(
            &ds,
            &JoinConfig {
                theta: 0.5,
                ..Default::default()
            },
            2,
        );
        let high = join_all(
            &ds,
            &JoinConfig {
                theta: 0.75,
                ..Default::default()
            },
            2,
        );
        let low_set: std::collections::HashSet<(TrajectoryId, TrajectoryId)> =
            low.pairs.iter().map(|p| (p.a, p.b)).collect();
        for p in &high.pairs {
            assert!(low_set.contains(&(p.a, p.b)));
            assert!(p.similarity >= 0.75);
        }
        assert!(high.pairs.len() <= low.pairs.len());
        // higher threshold prunes harder
        assert!(high.visited_trajectories <= low.visited_trajectories);
    }

    #[test]
    fn min_radius_scheduling_agrees() {
        let ds = Dataset::build(&DatasetConfig::small(40, 16)).unwrap();
        let rr = join_all(
            &ds,
            &JoinConfig {
                theta: 0.6,
                scheduling: JoinScheduling::RoundRobin,
                ..Default::default()
            },
            1,
        );
        let mr = join_all(
            &ds,
            &JoinConfig {
                theta: 0.6,
                scheduling: JoinScheduling::MinRadius,
                ..Default::default()
            },
            1,
        );
        assert_eq!(rr.pairs, mr.pairs);
    }

    #[test]
    fn near_duplicates_are_found() {
        // two copies of the same trip must join at any θ ≤ 1
        use uots_text::KeywordSet;
        use uots_trajectory::{Sample, Trajectory};
        let ds = Dataset::build(&DatasetConfig::small(5, 17)).unwrap();
        let mut store = TrajectoryStore::new();
        let mk = || {
            Trajectory::new(
                (0..5)
                    .map(|i| Sample {
                        node: uots_network::NodeId(i * 2),
                        time: 1_000.0 + 30.0 * i as f64,
                    })
                    .collect(),
                KeywordSet::empty(),
            )
            .unwrap()
        };
        let a = store.push(mk());
        let b = store.push(mk());
        let vidx = store.build_vertex_index(ds.network.num_nodes());
        let tidx = store.build_timestamp_index();
        let cfg = JoinConfig {
            theta: 0.999,
            ..Default::default()
        };
        let r = ts_join(&ds.network, &store, &vidx, &tidx, &cfg, 1).unwrap();
        assert_eq!(r.pairs.len(), 1);
        assert_eq!((r.pairs[0].a, r.pairs[0].b), (a, b));
        assert!((r.pairs[0].similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unbudgeted_join_is_exact() {
        let ds = Dataset::build(&DatasetConfig::small(30, 21)).unwrap();
        let r = join_all(
            &ds,
            &JoinConfig {
                theta: 0.6,
                ..Default::default()
            },
            2,
        );
        assert!(r.completeness.is_exact());
    }

    #[test]
    fn budgeted_join_returns_a_certified_subset() {
        let ds = Dataset::build(&DatasetConfig::small(60, 22)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        let cfg = JoinConfig {
            theta: 0.6,
            ..Default::default()
        };
        let exact = ts_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, &cfg, 1).unwrap();
        let exact_set: std::collections::HashSet<(TrajectoryId, TrajectoryId)> =
            exact.pairs.iter().map(|p| (p.a, p.b)).collect();
        // a visited-trajectory cap small enough to trip mid-join
        let budget =
            ExecutionBudget::default().with_max_visited(exact.visited_trajectories / 4 + 1);
        let r = ts_join_with(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &cfg,
            1,
            &budget,
            &RunControl::unbounded(),
        )
        .unwrap();
        assert!(!r.completeness.is_exact(), "tiny budget must interrupt");
        assert!((r.completeness.bound_gap() - (1.0 - cfg.theta)).abs() < 1e-12);
        assert!(r.pairs.len() <= exact.pairs.len());
        for p in &r.pairs {
            assert!(exact_set.contains(&(p.a, p.b)), "subset semantics");
            assert!(p.similarity >= cfg.theta, "reported pairs stay exact");
        }
    }

    #[test]
    fn pre_cancelled_join_returns_empty_best_effort() {
        let ds = Dataset::build(&DatasetConfig::small(20, 23)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        let cfg = JoinConfig {
            theta: 0.7,
            ..Default::default()
        };
        let token = uots_core::CancellationToken::new();
        token.cancel();
        let r = ts_join_with(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &cfg,
            2,
            &ExecutionBudget::UNLIMITED,
            &RunControl::with_token(token),
        )
        .unwrap();
        assert!(r.pairs.is_empty());
        assert!(!r.completeness.is_exact());
        assert_eq!(r.visited_trajectories, 0);
    }

    #[test]
    fn join_phases_partition_the_runtime() {
        let ds = Dataset::build(&DatasetConfig::small(40, 24)).unwrap();
        let r = join_all(
            &ds,
            &JoinConfig {
                theta: 0.6,
                ..Default::default()
            },
            2,
        );
        assert!(
            r.phases.nanos(Phase::NetworkExpansion) > 0,
            "search phase always does work"
        );
        assert!(r.phases.total() <= r.runtime, "phases cannot exceed wall");
    }

    #[test]
    fn instrumented_join_records_into_the_registry() {
        let ds = Dataset::build(&DatasetConfig::small(40, 25)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        let cfg = JoinConfig {
            theta: 0.6,
            ..Default::default()
        };
        let registry = MetricsRegistry::default();
        let r = ts_join_instrumented(
            &ds.network,
            &ds.store,
            &ds.vertex_index,
            &tidx,
            &cfg,
            2,
            &ExecutionBudget::UNLIMITED,
            &RunControl::unbounded(),
            &registry,
        )
        .unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("uots_join_pairs_total", &[]),
            Some(r.pairs.len() as u64)
        );
        assert_eq!(
            snap.counter("uots_join_visited_trajectories_total", &[]),
            Some(r.visited_trajectories as u64)
        );
        assert_eq!(snap.counter("uots_join_interrupted_total", &[]), None);
        let phase_hist = snap
            .histogram(
                "uots_join_phase_duration_ns",
                &[("phase", "network_expansion")],
            )
            .expect("search phase recorded");
        assert_eq!(phase_hist.count, 1);
        // and the whole export must be a valid Prometheus page
        uots_obs::validate_prometheus_text(&registry.render_prometheus()).unwrap();
    }

    #[test]
    fn cached_join_matches_uncached_and_warms_across_runs() {
        let ds = Dataset::build(&DatasetConfig::small(40, 26)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        let cfg = JoinConfig {
            theta: 0.6,
            ..Default::default()
        };
        let plain = ts_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, &cfg, 2).unwrap();
        let cache = Arc::new(DistanceCache::new(1 << 16));
        for round in 0..2 {
            let cached = ts_join_cached(
                &ds.network,
                &ds.store,
                &ds.vertex_index,
                &tidx,
                &cfg,
                2,
                &ExecutionBudget::UNLIMITED,
                &RunControl::unbounded(),
                &cache,
            )
            .unwrap();
            assert_eq!(plain.pairs.len(), cached.pairs.len(), "round {round}");
            for (a, b) in plain.pairs.iter().zip(cached.pairs.iter()) {
                assert_eq!((a.a, a.b), (b.a, b.b), "round {round}");
                assert_eq!(
                    a.similarity.to_bits(),
                    b.similarity.to_bits(),
                    "round {round}: cached similarities must be bit-identical"
                );
            }
        }
        let stats = cache.stats();
        assert!(stats.inserts > 0, "searches must publish prefixes");
        assert!(stats.hits > 0, "the second run must hit the warm cache");
    }

    #[test]
    fn validation_errors() {
        let ds = Dataset::build(&DatasetConfig::small(10, 18)).unwrap();
        let tidx = ds.store.build_timestamp_index();
        for bad in [
            JoinConfig {
                theta: 0.0,
                ..Default::default()
            },
            JoinConfig {
                theta: 1.5,
                ..Default::default()
            },
            JoinConfig {
                lambda: -0.1,
                ..Default::default()
            },
            JoinConfig {
                max_sources: 1,
                ..Default::default()
            },
        ] {
            assert!(
                ts_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, &bad, 1).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn spatial_only_and_temporal_only_joins() {
        let ds = Dataset::build(&DatasetConfig::small(30, 19)).unwrap();
        for lambda in [0.0, 1.0] {
            let cfg = JoinConfig {
                theta: 0.8,
                lambda,
                ..Default::default()
            };
            let fast = join_all(&ds, &cfg, 1);
            let brute = ts_join_brute(&ds.network, &ds.store, &cfg).unwrap();
            assert_eq!(fast.pairs.len(), brute.len(), "λ={lambda}");
            for (f, b) in fast.pairs.iter().zip(brute.iter()) {
                assert!((f.similarity - b.similarity).abs() < 1e-9);
            }
        }
    }
}
