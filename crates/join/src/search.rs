//! Per-trajectory candidate search — the "trajectory-search phase" of the
//! two-phase join.
//!
//! For one probe trajectory τ the worker expands the network concurrently
//! from every distinct sample vertex of τ and the time axis from every
//! distinct timestamp, maintaining for each encountered trajectory τ′ the
//! exact per-source distances (first sighting = exact, Dijkstra order) and
//! an upper bound on the *pair* similarity:
//!
//! ```text
//! UB(τ,τ′) = λ·(UB_half1_S + UB_half2_S)/2 + (1−λ)·(UB_half1_T + UB_half2_T)/2
//! UB_half1 = Σ_i w_i e^(−lb_i)            (τ's own samples, bounds/exact)
//! UB_half2 = e^(−min_i lb_i)              (Lemma 1: τ′'s samples cannot be
//!                                          closer to τ than τ's closest
//!                                          sample is to τ′)
//! ```
//!
//! Trajectories fully scanned from every live source have an exact first
//! half; if their bound still reaches θ they become **candidates** carrying
//! that half. The search terminates when no unseen or partly-scanned
//! trajectory can reach θ. The merge phase
//! ([`crate::ts_join`]) then sums the two directed halves of each
//! candidate pair — both directions are guaranteed present for every
//! qualifying pair.
//!
//! Workers own their expansion scratch and are reused across probe
//! trajectories, so a full join performs no per-search network-sized
//! allocations after warm-up.

use crate::similarity::{distinct_nodes_weighted, distinct_times_weighted, Half};
use crate::{JoinConfig, JoinScheduling};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use uots_core::{CachedSource, DistanceCache};
use uots_index::{TimeExpansion, TimestampIndex, VertexInvertedIndex};
use uots_network::{RoadNetwork, TotalF64};
use uots_trajectory::{TrajectoryId, TrajectoryStore};

/// A candidate partner with the probe's directed half-contribution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub other: TrajectoryId,
    pub half: Half,
}

/// Per-search effort counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SearchStats {
    pub visited: usize,
    pub settled_vertices: usize,
    pub scanned_timestamps: usize,
    pub candidates: usize,
}

struct PairState {
    sdists: Vec<f64>,
    s_rem: u32,
    tdists: Vec<f64>,
    t_rem: u32,
    done: bool,
}

#[derive(PartialEq)]
struct BoundEntry {
    ub: TotalF64,
    tid: TrajectoryId,
}

impl Eq for BoundEntry {}

impl PartialOrd for BoundEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BoundEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ub
            .cmp(&other.ub)
            .then_with(|| other.tid.cmp(&self.tid))
    }
}

/// A reusable join-search worker bound to one dataset. With a shared
/// [`DistanceCache`], each spatial source probes the cache for a settled
/// prefix to replay before expanding live, and publishes its (possibly
/// partial) prefix back after every search — probes sharing sample
/// vertices then skip the shared head of each other's expansions.
pub(crate) struct Worker<'a> {
    net: &'a RoadNetwork,
    store: &'a TrajectoryStore,
    vertex_index: &'a VertexInvertedIndex<TrajectoryId>,
    timestamp_index: &'a TimestampIndex<TrajectoryId>,
    cache: Option<Arc<DistanceCache>>,
    /// Expansion scratch, grown on demand and restarted per search.
    sources: Vec<CachedSource<'a>>,
}

impl<'a> Worker<'a> {
    pub(crate) fn new(
        net: &'a RoadNetwork,
        store: &'a TrajectoryStore,
        vertex_index: &'a VertexInvertedIndex<TrajectoryId>,
        timestamp_index: &'a TimestampIndex<TrajectoryId>,
        cache: Option<Arc<DistanceCache>>,
    ) -> Self {
        Worker {
            net,
            store,
            vertex_index,
            timestamp_index,
            cache,
            sources: Vec::new(),
        }
    }

    /// Finds every candidate partner of the store's own trajectory `probe`
    /// under `cfg` (self-join direction: the probe id is excluded).
    pub(crate) fn search(
        &mut self,
        cfg: &JoinConfig,
        probe: TrajectoryId,
    ) -> (Vec<Candidate>, SearchStats) {
        let traj = self.store.get(probe);
        self.search_trajectory(cfg, traj, Some(probe))
    }

    /// Finds every candidate partner of an arbitrary probe trajectory
    /// (which need not belong to this worker's target store — the non-self
    /// join probes one set against the other's indexes). `skip` excludes a
    /// target id, used by the self-join to avoid the trivial self pair.
    pub(crate) fn search_trajectory(
        &mut self,
        cfg: &JoinConfig,
        traj: &uots_trajectory::Trajectory,
        skip: Option<TrajectoryId>,
    ) -> (Vec<Candidate>, SearchStats) {
        let (nodes, node_weights) = distinct_nodes_weighted(traj);
        let (times, time_weights) = distinct_times_weighted(traj);
        assert!(
            nodes.len() <= cfg.max_sources,
            "probe trajectory has {} distinct vertices, exceeding max_sources {}",
            nodes.len(),
            cfg.max_sources
        );
        let ns = nodes.len();
        let nt = times.len();

        let use_temporal = cfg.lambda < 1.0;
        let use_spatial = cfg.lambda > 0.0;
        // spatial sources only when the spatial half matters — a cache
        // probe for a source that will never step would skew hit rates
        if use_spatial {
            for (i, &v) in nodes.iter().enumerate() {
                if let Some(src) = self.sources.get_mut(i) {
                    src.restart(v);
                } else {
                    self.sources
                        .push(CachedSource::start(self.net, v, self.cache.as_ref()));
                }
            }
        }
        let mut temporal: Vec<TimeExpansion<'a, TrajectoryId>> = times
            .iter()
            .map(|&t| self.timestamp_index.expand_from(t))
            .collect();

        let active_t = if use_temporal { nt } else { 0 };
        let active_s = if use_spatial { ns } else { 0 };

        let mut states: HashMap<TrajectoryId, PairState> = HashMap::new();
        let mut heap: BinaryHeap<BoundEntry> = BinaryHeap::new();
        let mut out: Vec<Candidate> = Vec::new();
        let mut stats = SearchStats::default();
        let mut rr = 0usize;
        let num_sources = active_s + active_t;
        debug_assert!(num_sources > 0);

        // distance lower bound of spatial source i for unscanned trajectories
        let s_lb = |exp: &CachedSource<'_>| exp.unsettled_lower_bound();
        let t_lb = |exp: &TimeExpansion<'_, TrajectoryId>| {
            if exp.is_exhausted() {
                f64::INFINITY
            } else {
                exp.radius()
            }
        };

        macro_rules! ub_of {
            ($st:expr) => {{
                let st: &PairState = $st;
                let mut half1_s = 0.0;
                let mut min_s = f64::INFINITY;
                if use_spatial {
                    for i in 0..ns {
                        let d = if st.sdists[i].is_nan() {
                            s_lb(&self.sources[i])
                        } else {
                            st.sdists[i]
                        };
                        min_s = min_s.min(d);
                        half1_s += node_weights[i] * (-d / cfg.decay_km).exp();
                    }
                }
                let mut half1_t = 0.0;
                let mut min_t = f64::INFINITY;
                if use_temporal {
                    for j in 0..nt {
                        let d = if st.tdists[j].is_nan() {
                            t_lb(&temporal[j])
                        } else {
                            st.tdists[j]
                        };
                        min_t = min_t.min(d);
                        half1_t += time_weights[j] * (-d / cfg.decay_s).exp();
                    }
                }
                let half2_s = (-min_s / cfg.decay_km).exp();
                let half2_t = (-min_t / cfg.decay_s).exp();
                cfg.lambda * (half1_s + half2_s) / 2.0
                    + (1.0 - cfg.lambda) * (half1_t + half2_t) / 2.0
            }};
        }

        macro_rules! finalize {
            ($tid:expr, $st:expr) => {{
                let tid: TrajectoryId = $tid;
                let st: &mut PairState = $st;
                st.done = true;
                stats.candidates += 1;
                let mut half1_s = 0.0;
                let mut min_s = f64::INFINITY;
                if use_spatial {
                    for i in 0..ns {
                        debug_assert!(!st.sdists[i].is_nan());
                        min_s = min_s.min(st.sdists[i]);
                        half1_s += node_weights[i] * (-st.sdists[i] / cfg.decay_km).exp();
                    }
                }
                let mut half1_t = 0.0;
                let mut min_t = f64::INFINITY;
                if use_temporal {
                    for j in 0..nt {
                        min_t = min_t.min(st.tdists[j]);
                        half1_t += time_weights[j] * (-st.tdists[j] / cfg.decay_s).exp();
                    }
                }
                // keep only pairs whose Lemma-1 bound still reaches θ
                let ub = cfg.lambda * (half1_s + (-min_s / cfg.decay_km).exp()) / 2.0
                    + (1.0 - cfg.lambda) * (half1_t + (-min_t / cfg.decay_s).exp()) / 2.0;
                if ub >= cfg.theta {
                    out.push(Candidate {
                        other: tid,
                        half: Half {
                            spatial: cfg.lambda * half1_s / 2.0,
                            temporal: (1.0 - cfg.lambda) * half1_t / 2.0,
                        },
                    });
                }
            }};
        }

        macro_rules! touch {
            ($tid:expr) => {{
                let tid: TrajectoryId = $tid;
                stats.visited += 1;
                let mut sdists = vec![f64::NAN; if use_spatial { ns } else { 0 }];
                let mut s_rem = 0u32;
                if use_spatial {
                    for (i, d) in sdists.iter_mut().enumerate() {
                        if self.sources[i].is_exhausted() {
                            *d = f64::INFINITY;
                        } else {
                            s_rem += 1;
                        }
                    }
                }
                let mut tdists = vec![f64::NAN; if use_temporal { nt } else { 0 }];
                let mut t_rem = 0u32;
                if use_temporal {
                    for (j, d) in tdists.iter_mut().enumerate() {
                        if temporal[j].is_exhausted() {
                            *d = f64::INFINITY;
                        } else {
                            t_rem += 1;
                        }
                    }
                }
                let _ = tid;
                PairState {
                    sdists,
                    s_rem,
                    tdists,
                    t_rem,
                    done: false,
                }
            }};
        }

        // Exhaustion sweep: a source that can deliver no further vertex
        // makes every pending distance toward it exact ∞. Run on the
        // exhaustion *transition* (tracked in `swept`) rather than relying
        // on a trailing `next_settled() == None` event — a resumed cached
        // source carries no stale heap entries and can exhaust without one,
        // and a fresh source can empty its heap on its very last settle.
        let mut swept = vec![false; active_s];
        macro_rules! sweep_spatial {
            ($src:expr) => {{
                let src: usize = $src;
                let pending: Vec<TrajectoryId> = states
                    .iter()
                    .filter(|(_, st)| !st.done && st.sdists[src].is_nan())
                    .map(|(&t, _)| t)
                    .collect();
                for tid in pending {
                    let st = states.get_mut(&tid).expect("present");
                    st.sdists[src] = f64::INFINITY;
                    st.s_rem -= 1;
                    if st.s_rem == 0 && st.t_rem == 0 {
                        finalize!(tid, st);
                    }
                }
            }};
        }

        loop {
            for (i, sw) in swept.iter_mut().enumerate() {
                if !*sw && self.sources[i].is_exhausted() {
                    *sw = true;
                    sweep_spatial!(i);
                }
            }

            // ---- pick a live source ----
            let live = |s: usize,
                        sources: &Vec<CachedSource<'a>>,
                        temporal: &Vec<TimeExpansion<'a, TrajectoryId>>| {
                if s < active_s {
                    !sources[s].is_exhausted()
                } else {
                    !temporal[s - active_s].is_exhausted()
                }
            };
            let src = match cfg.scheduling {
                JoinScheduling::RoundRobin => {
                    let mut found = None;
                    for off in 0..num_sources {
                        let s = (rr + off) % num_sources;
                        if live(s, &self.sources, &temporal) {
                            found = Some(s);
                            rr = s + 1;
                            break;
                        }
                    }
                    found
                }
                JoinScheduling::MinRadius => (0..num_sources)
                    .filter(|&s| live(s, &self.sources, &temporal))
                    .min_by(|&a, &b| {
                        let ra = if a < active_s {
                            self.sources[a].radius() / cfg.decay_km
                        } else {
                            temporal[a - active_s].radius() / cfg.decay_s
                        };
                        let rb = if b < active_s {
                            self.sources[b].radius() / cfg.decay_km
                        } else {
                            temporal[b - active_s].radius() / cfg.decay_s
                        };
                        ra.total_cmp(&rb)
                    }),
            };
            let Some(src) = src else {
                break; // everything exhausted: all reachable pairs finalized
            };

            // ---- one scan step ----
            if src < active_s {
                match self.sources[src].next_settled() {
                    Some(settled) => {
                        stats.settled_vertices += 1;
                        let tids: &'a [TrajectoryId] = self.vertex_index.values_at(settled.node);
                        for &tid in tids {
                            if Some(tid) == skip {
                                continue;
                            }
                            let created = !states.contains_key(&tid);
                            let st = states.entry(tid).or_insert_with(|| touch!(tid));
                            if st.done {
                                continue;
                            }
                            if st.sdists[src].is_nan() {
                                st.sdists[src] = settled.dist;
                                st.s_rem -= 1;
                            } else if created && st.sdists[src] == f64::INFINITY {
                                // this very settle exhausted the source;
                                // keep the exact distance it delivered
                                st.sdists[src] = settled.dist;
                            } else {
                                continue;
                            }
                            if st.s_rem == 0 && st.t_rem == 0 {
                                finalize!(tid, st);
                            } else {
                                let ub = ub_of!(&*st);
                                heap.push(BoundEntry {
                                    ub: TotalF64(ub),
                                    tid,
                                });
                            }
                        }
                    }
                    None => {
                        // stale heap entries drained: the source exhausted
                        // without delivering a vertex this step
                        if !swept[src] {
                            swept[src] = true;
                            sweep_spatial!(src);
                        }
                    }
                }
            } else {
                let j = src - active_s;
                match temporal[j].next_scanned() {
                    Some(scanned) => {
                        stats.scanned_timestamps += 1;
                        let tid = scanned.value;
                        if Some(tid) != skip {
                            let created = !states.contains_key(&tid);
                            let st = states.entry(tid).or_insert_with(|| touch!(tid));
                            let fresh = if st.done {
                                false
                            } else if st.tdists[j].is_nan() {
                                st.tdists[j] = scanned.dt;
                                st.t_rem -= 1;
                                true
                            } else if created && st.tdists[j] == f64::INFINITY {
                                // exhaustion-moment correction, as spatial
                                st.tdists[j] = scanned.dt;
                                true
                            } else {
                                false
                            };
                            if fresh {
                                if st.s_rem == 0 && st.t_rem == 0 {
                                    finalize!(tid, st);
                                } else {
                                    let ub = ub_of!(&*st);
                                    heap.push(BoundEntry {
                                        ub: TotalF64(ub),
                                        tid,
                                    });
                                }
                            }
                        }
                    }
                    None => {
                        let pending: Vec<TrajectoryId> = states
                            .iter()
                            .filter(|(_, st)| !st.done && st.tdists[j].is_nan())
                            .map(|(&t, _)| t)
                            .collect();
                        for tid in pending {
                            let st = states.get_mut(&tid).expect("present");
                            st.tdists[j] = f64::INFINITY;
                            st.t_rem -= 1;
                            if st.s_rem == 0 && st.t_rem == 0 {
                                finalize!(tid, st);
                            }
                        }
                    }
                }
            }

            // ---- termination test ----
            let mut ub_unseen = 0.0;
            if use_spatial {
                let mut acc = 0.0;
                let mut min_r = f64::INFINITY;
                for (w, e) in node_weights.iter().zip(&self.sources).take(ns) {
                    let r = s_lb(e);
                    min_r = min_r.min(r);
                    acc += w * (-r / cfg.decay_km).exp();
                }
                ub_unseen += cfg.lambda * (acc + (-min_r / cfg.decay_km).exp()) / 2.0;
            }
            if use_temporal {
                let mut acc = 0.0;
                let mut min_r = f64::INFINITY;
                for j in 0..nt {
                    let r = t_lb(&temporal[j]);
                    min_r = min_r.min(r);
                    acc += time_weights[j] * (-r / cfg.decay_s).exp();
                }
                ub_unseen += (1.0 - cfg.lambda) * (acc + (-min_r / cfg.decay_s).exp()) / 2.0;
            }
            if ub_unseen >= cfg.theta {
                continue;
            }
            // partly scanned: lazy heap cleanup
            let mut blocked = false;
            while let Some(entry) = heap.peek() {
                let tid = entry.tid;
                match states.get(&tid) {
                    Some(st) if !st.done => {
                        let cur = ub_of!(st);
                        if cur >= cfg.theta {
                            blocked = true;
                            break;
                        }
                        heap.pop();
                    }
                    _ => {
                        heap.pop();
                    }
                }
            }
            if !blocked {
                break;
            }
        }

        // Publish each source's (possibly partial) settled prefix: a join
        // search always runs to its own termination (interruption is
        // probe-granular, handled by the caller's gate), so every prefix
        // here is a clean one.
        if use_spatial {
            for src in self.sources.iter_mut().take(ns) {
                src.publish();
            }
        }

        (out, stats)
    }
}
