//! Network-constrained trajectories and their in-memory store.
//!
//! A trajectory is a finite, time-ordered sequence of samples
//! `⟨(p₁, t₁), …, (p_n, t_n)⟩` whose sample points are vertices of a road
//! network (the paper assumes map-matched data) and whose timestamps live on
//! a 24-hour axis. Each trajectory additionally carries the textual
//! attribute set that the UOTS query matches against.

use crate::TrajectoryError;
use serde::{Deserialize, Serialize};
use uots_index::{KeywordInvertedIndex, TimestampIndex, VertexInvertedIndex, DAY_SECONDS};
use uots_network::{NodeId, RoadNetwork};
use uots_text::KeywordSet;

/// Identifier of a trajectory within a [`TrajectoryStore`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrajectoryId(pub u32);

impl TrajectoryId {
    /// Dense index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TrajectoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// One timestamped sample point of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The network vertex the sample is map-matched to.
    pub node: NodeId,
    /// Time of day in seconds, `[0, 86400]`.
    pub time: f64,
}

/// A validated, immutable trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    samples: Vec<Sample>,
    keywords: KeywordSet,
}

impl Trajectory {
    /// Validates and constructs a trajectory.
    ///
    /// # Errors
    ///
    /// * [`TrajectoryError::Empty`] — no samples;
    /// * [`TrajectoryError::BadTimestamp`] — a timestamp is non-finite or
    ///   outside the 24-hour axis;
    /// * [`TrajectoryError::TimeNotMonotone`] — timestamps decrease.
    pub fn new(samples: Vec<Sample>, keywords: KeywordSet) -> Result<Self, TrajectoryError> {
        if samples.is_empty() {
            return Err(TrajectoryError::Empty);
        }
        let mut prev = f64::NEG_INFINITY;
        for (i, s) in samples.iter().enumerate() {
            if !s.time.is_finite() || !(0.0..=DAY_SECONDS).contains(&s.time) {
                return Err(TrajectoryError::BadTimestamp {
                    index: i,
                    time: s.time,
                });
            }
            if s.time < prev {
                return Err(TrajectoryError::TimeNotMonotone { index: i });
            }
            prev = s.time;
        }
        Ok(Trajectory { samples, keywords })
    }

    /// Number of samples `|τ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// A trajectory is never empty (validated at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The samples in time order.
    #[inline]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over the sample vertices.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.samples.iter().map(|s| s.node)
    }

    /// Iterator over the sample timestamps.
    pub fn times(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.time)
    }

    /// The textual attributes of the trajectory.
    #[inline]
    pub fn keywords(&self) -> &KeywordSet {
        &self.keywords
    }

    /// `[first timestamp, last timestamp]` — the temporal range.
    pub fn time_range(&self) -> (f64, f64) {
        (
            self.samples.first().expect("non-empty").time,
            self.samples.last().expect("non-empty").time,
        )
    }

    /// Trip duration in seconds.
    pub fn duration(&self) -> f64 {
        let (a, b) = self.time_range();
        b - a
    }

    /// Whether any sample visits `node`.
    pub fn visits(&self, node: NodeId) -> bool {
        self.samples.iter().any(|s| s.node == node)
    }

    /// Total network length travelled, assuming straight-line movement is a
    /// lower bound. (Exact path length requires the route, which the store
    /// does not retain; this is a diagnostic, not used by the algorithms.)
    pub fn euclidean_span(&self, net: &RoadNetwork) -> f64 {
        self.samples
            .windows(2)
            .map(|w| net.point(w[0].node).distance(&net.point(w[1].node)))
            .sum()
    }
}

/// An append-only collection of trajectories with dense ids, plus index
/// construction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrajectoryStore {
    trajectories: Vec<Trajectory>,
}

impl TrajectoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with a capacity hint.
    pub fn with_capacity(n: usize) -> Self {
        TrajectoryStore {
            trajectories: Vec::with_capacity(n),
        }
    }

    /// Appends a trajectory, returning its id.
    pub fn push(&mut self, t: Trajectory) -> TrajectoryId {
        let id = TrajectoryId(self.trajectories.len() as u32);
        self.trajectories.push(t);
        id
    }

    /// The trajectory with id `id`.
    ///
    /// # Panics
    ///
    /// Panics for a foreign id.
    #[inline]
    pub fn get(&self, id: TrajectoryId) -> &Trajectory {
        &self.trajectories[id.index()]
    }

    /// Number of stored trajectories.
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Iterator over `(id, trajectory)` pairs in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (TrajectoryId, &Trajectory)> {
        self.trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajectoryId(i as u32), t))
    }

    /// Iterator over all ids.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = TrajectoryId> {
        (0..self.trajectories.len() as u32).map(TrajectoryId)
    }

    /// Builds the vertex → trajectory inverted index the expansion search
    /// probes (each trajectory registered once per *distinct* vertex).
    pub fn build_vertex_index(&self, num_vertices: usize) -> VertexInvertedIndex<TrajectoryId> {
        VertexInvertedIndex::build(
            num_vertices,
            self.iter()
                .flat_map(|(id, t)| t.nodes().map(move |v| (v, id))),
        )
    }

    /// Builds the keyword → trajectory inverted index used by the textual
    /// baseline.
    pub fn build_keyword_index(&self, vocab_len: usize) -> KeywordInvertedIndex<TrajectoryId> {
        KeywordInvertedIndex::build(
            vocab_len,
            self.iter()
                .flat_map(|(id, t)| t.keywords().iter().map(move |k| (k, id))),
        )
    }

    /// Builds the sample-timestamp index for the temporal extension.
    pub fn build_timestamp_index(&self) -> TimestampIndex<TrajectoryId> {
        TimestampIndex::build(
            self.iter()
                .flat_map(|(id, t)| t.times().map(move |time| (time, id))),
        )
    }

    /// Like [`build_vertex_index`](Self::build_vertex_index), covering only
    /// the ids `live` marks live — the per-epoch index a serving snapshot
    /// carries so retired trajectories are never discovered spatially.
    pub fn build_vertex_index_live(
        &self,
        num_vertices: usize,
        live: &crate::LiveSet,
    ) -> VertexInvertedIndex<TrajectoryId> {
        VertexInvertedIndex::build(
            num_vertices,
            live.iter_live()
                .flat_map(|id| self.get(id).nodes().map(move |v| (v, id))),
        )
    }

    /// Like [`build_keyword_index`](Self::build_keyword_index), covering
    /// only the live ids.
    pub fn build_keyword_index_live(
        &self,
        vocab_len: usize,
        live: &crate::LiveSet,
    ) -> KeywordInvertedIndex<TrajectoryId> {
        KeywordInvertedIndex::build(
            vocab_len,
            live.iter_live()
                .flat_map(|id| self.get(id).keywords().iter().map(move |k| (k, id))),
        )
    }

    /// Like [`build_timestamp_index`](Self::build_timestamp_index),
    /// covering only the live ids.
    pub fn build_timestamp_index_live(
        &self,
        live: &crate::LiveSet,
    ) -> TimestampIndex<TrajectoryId> {
        TimestampIndex::build(
            live.iter_live()
                .flat_map(|id| self.get(id).times().map(move |time| (time, id))),
        )
    }
}

impl std::ops::Index<TrajectoryId> for TrajectoryStore {
    type Output = Trajectory;

    fn index(&self, id: TrajectoryId) -> &Trajectory {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uots_text::KeywordId;

    fn sample(v: u32, t: f64) -> Sample {
        Sample {
            node: NodeId(v),
            time: t,
        }
    }

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn valid_trajectory_construction() {
        let t = Trajectory::new(
            vec![sample(0, 100.0), sample(1, 200.0), sample(0, 200.0)],
            kws(&[1, 2]),
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.time_range(), (100.0, 200.0));
        assert_eq!(t.duration(), 100.0);
        assert!(t.visits(NodeId(1)));
        assert!(!t.visits(NodeId(9)));
        assert_eq!(t.keywords().len(), 2);
    }

    #[test]
    fn validation_rejects_bad_trajectories() {
        assert!(matches!(
            Trajectory::new(vec![], kws(&[])),
            Err(TrajectoryError::Empty)
        ));
        assert!(matches!(
            Trajectory::new(vec![sample(0, -5.0)], kws(&[])),
            Err(TrajectoryError::BadTimestamp { index: 0, .. })
        ));
        assert!(matches!(
            Trajectory::new(vec![sample(0, 1e9)], kws(&[])),
            Err(TrajectoryError::BadTimestamp { .. })
        ));
        assert!(matches!(
            Trajectory::new(vec![sample(0, 100.0), sample(1, 50.0)], kws(&[])),
            Err(TrajectoryError::TimeNotMonotone { index: 1 })
        ));
        assert!(matches!(
            Trajectory::new(vec![sample(0, f64::NAN)], kws(&[])),
            Err(TrajectoryError::BadTimestamp { .. })
        ));
    }

    #[test]
    fn equal_consecutive_timestamps_are_allowed() {
        // two GPS fixes in the same second are common in real data
        assert!(Trajectory::new(vec![sample(0, 5.0), sample(1, 5.0)], kws(&[])).is_ok());
    }

    #[test]
    fn store_ids_are_dense() {
        let mut s = TrajectoryStore::new();
        let a = s.push(Trajectory::new(vec![sample(0, 0.0)], kws(&[])).unwrap());
        let b = s.push(Trajectory::new(vec![sample(1, 0.0)], kws(&[])).unwrap());
        assert_eq!(a, TrajectoryId(0));
        assert_eq!(b, TrajectoryId(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s[a].samples()[0].node, NodeId(0));
        assert_eq!(s.iter().count(), 2);
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn vertex_index_registers_distinct_vertices_once() {
        let mut s = TrajectoryStore::new();
        // revisits vertex 0
        let id = s.push(
            Trajectory::new(
                vec![sample(0, 0.0), sample(1, 1.0), sample(0, 2.0)],
                kws(&[]),
            )
            .unwrap(),
        );
        let idx = s.build_vertex_index(3);
        assert_eq!(idx.values_at(NodeId(0)), &[id]);
        assert_eq!(idx.values_at(NodeId(1)), &[id]);
        assert_eq!(idx.values_at(NodeId(2)), &[] as &[TrajectoryId]);
        assert_eq!(idx.num_postings(), 2);
    }

    #[test]
    fn keyword_index_maps_tags_to_trajectories() {
        let mut s = TrajectoryStore::new();
        let a = s.push(Trajectory::new(vec![sample(0, 0.0)], kws(&[1, 2])).unwrap());
        let b = s.push(Trajectory::new(vec![sample(1, 0.0)], kws(&[2])).unwrap());
        let idx = s.build_keyword_index(4);
        assert_eq!(idx.values_for(KeywordId(1)), &[a]);
        assert_eq!(idx.values_for(KeywordId(2)), &[a, b]);
        assert_eq!(idx.values_for(KeywordId(0)), &[] as &[TrajectoryId]);
    }

    #[test]
    fn timestamp_index_covers_all_samples() {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![sample(0, 10.0), sample(1, 20.0)], kws(&[])).unwrap());
        s.push(Trajectory::new(vec![sample(2, 15.0)], kws(&[])).unwrap());
        let idx = s.build_timestamp_index();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![sample(0, 1.0), sample(2, 9.0)], kws(&[3])).unwrap());
        let json = serde_json::to_string(&s).unwrap();
        let back: TrajectoryStore = serde_json::from_str(&json).unwrap();
        assert_eq!(s.len(), back.len());
        assert_eq!(s.get(TrajectoryId(0)), back.get(TrajectoryId(0)));
    }
}
