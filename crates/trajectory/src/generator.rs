//! Synthetic trip generation.
//!
//! Stands in for the paper's real taxi data (T-drive Beijing): trips are
//! shortest-path routes between *hotspot-biased* endpoints, subsampled into
//! sample points, timestamped with a rush-hour start-time mixture and a
//! per-trip speed, and tagged by the category model. The spatial skew
//! (hotspots), temporal skew (rush hours) and textual skew (Zipf categories)
//! are what make pruning behave as it does on real data.

use crate::tags::TagSampler;
use crate::{Sample, Trajectory, TrajectoryError, TrajectoryStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uots_index::{GridIndex, DAY_SECONDS};
use uots_network::astar::AStar;
use uots_network::{NodeId, Point, RoadNetwork};

/// Configuration of the [`TripGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct TripGeneratorConfig {
    /// Number of trajectories to generate.
    pub num_trips: usize,
    /// Number of spatial hotspot centres (popular origins/destinations).
    pub hotspots: usize,
    /// Probability that a trip endpoint is drawn near a hotspot rather than
    /// uniformly.
    pub hotspot_prob: f64,
    /// Standard deviation (km) of the Gaussian scatter around a hotspot.
    pub hotspot_sigma_km: f64,
    /// Minimum network length (km) of an accepted trip.
    pub min_trip_km: f64,
    /// Keep every `sample_stride`-th route vertex as a sample point (first
    /// and last are always kept). `1` keeps the full route.
    pub sample_stride: usize,
    /// Mean travel speed in km/h.
    pub speed_kmh_mean: f64,
    /// Standard deviation of the travel speed in km/h.
    pub speed_kmh_std: f64,
    /// Inclusive range of tags per trip.
    pub min_tags: usize,
    /// See [`TripGeneratorConfig::min_tags`].
    pub max_tags: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TripGeneratorConfig {
    fn default() -> Self {
        TripGeneratorConfig {
            num_trips: 1000,
            hotspots: 8,
            hotspot_prob: 0.6,
            hotspot_sigma_km: 0.8,
            min_trip_km: 1.0,
            sample_stride: 3,
            speed_kmh_mean: 30.0,
            speed_kmh_std: 8.0,
            min_tags: 2,
            max_tags: 6,
            seed: 0x7219_0000,
        }
    }
}

impl TripGeneratorConfig {
    fn validate(&self) -> Result<(), TrajectoryError> {
        if self.num_trips == 0 {
            return Err(TrajectoryError::BadGeneratorConfig(
                "num_trips must be positive".into(),
            ));
        }
        if self.hotspots == 0 || !(0.0..=1.0).contains(&self.hotspot_prob) {
            return Err(TrajectoryError::BadGeneratorConfig(
                "need hotspots >= 1 and hotspot_prob in [0, 1]".into(),
            ));
        }
        if self.sample_stride == 0 {
            return Err(TrajectoryError::BadGeneratorConfig(
                "sample_stride must be >= 1".into(),
            ));
        }
        if self.speed_kmh_mean <= 0.0 || self.speed_kmh_mean.is_nan() || self.speed_kmh_std < 0.0 {
            return Err(TrajectoryError::BadGeneratorConfig(
                "speed must be positive".into(),
            ));
        }
        if self.min_tags > self.max_tags {
            return Err(TrajectoryError::BadGeneratorConfig(
                "min_tags must not exceed max_tags".into(),
            ));
        }
        Ok(())
    }

    /// Overrides the seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the trip count, builder-style.
    pub fn with_num_trips(mut self, n: usize) -> Self {
        self.num_trips = n;
        self
    }
}

/// A generated trip together with its ground truth, for tests and the
/// map-matching pipeline.
#[derive(Debug, Clone)]
pub struct GeneratedTrip {
    /// The subsampled, timestamped, tagged trajectory.
    pub trajectory: Trajectory,
    /// The full vertex route the trip followed.
    pub route: Vec<NodeId>,
    /// The category the tags were drawn from.
    pub category: usize,
}

/// Standard normal draw via Box–Muller.
fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a trip start hour from the rush-hour mixture:
/// 35% N(8.5h, 1h), 35% N(18h, 1.5h), 30% uniform day.
fn start_time<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    let hours = if u < 0.35 {
        normal(rng, 8.5, 1.0)
    } else if u < 0.70 {
        normal(rng, 18.0, 1.5)
    } else {
        rng.gen::<f64>() * 19.0 + 4.0
    };
    (hours.clamp(0.0, 23.5)) * 3_600.0
}

/// Deterministic trip generator over one road network.
pub struct TripGenerator<'a> {
    net: &'a RoadNetwork,
    grid: GridIndex,
    hotspot_centres: Vec<Point>,
    cfg: TripGeneratorConfig,
    rng: StdRng,
    astar: AStar<'a>,
}

impl<'a> TripGenerator<'a> {
    /// Creates a generator; builds a vertex grid index for endpoint
    /// snapping and selects hotspot centres.
    ///
    /// # Errors
    ///
    /// [`TrajectoryError::BadGeneratorConfig`] on invalid configuration.
    pub fn new(net: &'a RoadNetwork, cfg: TripGeneratorConfig) -> Result<Self, TrajectoryError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = GridIndex::build(net.points(), 8);
        let hotspot_centres = (0..cfg.hotspots)
            .map(|_| net.point(NodeId(rng.gen_range(0..net.num_nodes()) as u32)))
            .collect();
        Ok(TripGenerator {
            net,
            grid,
            hotspot_centres,
            cfg,
            rng,
            astar: AStar::new(net),
        })
    }

    fn sample_endpoint(&mut self) -> NodeId {
        if self.rng.gen::<f64>() < self.cfg.hotspot_prob {
            let c = self.hotspot_centres[self.rng.gen_range(0..self.hotspot_centres.len())];
            let p = Point::new(
                normal(&mut self.rng, c.x, self.cfg.hotspot_sigma_km),
                normal(&mut self.rng, c.y, self.cfg.hotspot_sigma_km),
            );
            NodeId(self.grid.nearest(&p).0 as u32)
        } else {
            NodeId(self.rng.gen_range(0..self.net.num_nodes()) as u32)
        }
    }

    /// Generates one trip (ground truth included). Endpoint pairs are
    /// retried until the route meets `min_trip_km`; after 32 failures the
    /// length requirement is dropped so generation always terminates.
    pub fn generate_trip(&mut self, tags: &TagSampler) -> GeneratedTrip {
        let mut best: Option<(Vec<NodeId>, f64)> = None;
        for attempt in 0..64 {
            let a = self.sample_endpoint();
            let b = self.sample_endpoint();
            if a == b {
                continue;
            }
            if let Some(route) = self.astar.route(a, b) {
                if route.distance >= self.cfg.min_trip_km || attempt >= 32 {
                    best = Some((route.path, route.distance));
                    break;
                }
                // remember the longest reject as a fallback
                if best.as_ref().is_none_or(|(_, d)| route.distance > *d) {
                    best = Some((route.path, route.distance));
                }
            }
        }
        let (route, distance) = best.expect("connected network yields a route");

        // subsample the route into sample points
        let stride = self.cfg.sample_stride;
        let mut picks: Vec<usize> = (0..route.len()).step_by(stride).collect();
        if *picks.last().expect("route non-empty") != route.len() - 1 {
            picks.push(route.len() - 1);
        }

        // speed and timestamps from cumulative route distance
        let speed_kmh = normal(
            &mut self.rng,
            self.cfg.speed_kmh_mean,
            self.cfg.speed_kmh_std,
        )
        .clamp(8.0, 90.0);
        let duration_s = distance / speed_kmh * 3_600.0;
        let mut start = start_time(&mut self.rng);
        if start + duration_s > DAY_SECONDS {
            start = (DAY_SECONDS - duration_s).max(0.0);
        }

        // cumulative distances along the route
        let mut cum = Vec::with_capacity(route.len());
        cum.push(0.0);
        for w in route.windows(2) {
            let weight = self
                .net
                .neighbors(w[0])
                .find(|(u, _)| *u == w[1])
                .map(|(_, wt)| wt)
                .expect("route vertices are adjacent");
            cum.push(cum.last().unwrap() + weight);
        }
        let total = *cum.last().unwrap();

        let samples: Vec<Sample> = picks
            .iter()
            .map(|&i| {
                let frac = if total > 0.0 { cum[i] / total } else { 0.0 };
                Sample {
                    node: route[i],
                    time: (start + frac * duration_s).min(DAY_SECONDS),
                }
            })
            .collect();

        let category = tags.sample_category(&mut self.rng);
        let count = self
            .rng
            .gen_range(self.cfg.min_tags..=self.cfg.max_tags.max(self.cfg.min_tags));
        let keywords = tags.sample_tags(category, count.max(1), &mut self.rng);

        let trajectory =
            Trajectory::new(samples, keywords).expect("generator output is valid by construction");
        GeneratedTrip {
            trajectory,
            route,
            category,
        }
    }

    /// Generates the configured number of trips into a fresh store.
    pub fn generate(&mut self, tags: &TagSampler) -> TrajectoryStore {
        let mut store = TrajectoryStore::with_capacity(self.cfg.num_trips);
        for _ in 0..self.cfg.num_trips {
            store.push(self.generate_trip(tags).trajectory);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::{TagModelConfig, TagSampler};
    use uots_network::generators::{grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, TagSampler) {
        let net = grid_city(&GridCityConfig::new(25, 25).with_seed(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let (tags, _vocab) = TagSampler::synthetic(&TagModelConfig::default(), &mut rng);
        (net, tags)
    }

    #[test]
    fn generates_requested_count_of_valid_trips() {
        let (net, tags) = setup();
        let cfg = TripGeneratorConfig {
            num_trips: 50,
            ..Default::default()
        };
        let mut g = TripGenerator::new(&net, cfg).unwrap();
        let store = g.generate(&tags);
        assert_eq!(store.len(), 50);
        for (_, t) in store.iter() {
            assert!(t.len() >= 2);
            assert!(!t.keywords().is_empty());
            let (a, b) = t.time_range();
            assert!(a >= 0.0 && b <= DAY_SECONDS && a <= b);
        }
    }

    #[test]
    fn trips_are_deterministic_per_seed() {
        let (net, tags) = setup();
        let cfg = TripGeneratorConfig {
            num_trips: 10,
            ..Default::default()
        }
        .with_seed(77);
        let s1 = TripGenerator::new(&net, cfg.clone())
            .unwrap()
            .generate(&tags);
        let s2 = TripGenerator::new(&net, cfg).unwrap().generate(&tags);
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn route_is_network_adjacent_and_samples_subset_route() {
        let (net, tags) = setup();
        let mut g = TripGenerator::new(&net, TripGeneratorConfig::default()).unwrap();
        for _ in 0..10 {
            let trip = g.generate_trip(&tags);
            for w in trip.route.windows(2) {
                assert!(net.neighbors(w[0]).any(|(u, _)| u == w[1]));
            }
            for s in trip.trajectory.samples() {
                assert!(trip.route.contains(&s.node));
            }
            // endpoints kept
            assert_eq!(trip.trajectory.samples()[0].node, trip.route[0]);
            assert_eq!(
                trip.trajectory.samples().last().unwrap().node,
                *trip.route.last().unwrap()
            );
        }
    }

    #[test]
    fn sample_stride_controls_density() {
        let (net, tags) = setup();
        let dense_cfg = TripGeneratorConfig {
            sample_stride: 1,
            min_trip_km: 3.0,
            ..Default::default()
        }
        .with_seed(5);
        let sparse_cfg = TripGeneratorConfig {
            sample_stride: 6,
            min_trip_km: 3.0,
            ..Default::default()
        }
        .with_seed(5);
        let mut dense = TripGenerator::new(&net, dense_cfg).unwrap();
        let mut sparse = TripGenerator::new(&net, sparse_cfg).unwrap();
        let dt = dense.generate_trip(&tags);
        let st = sparse.generate_trip(&tags);
        // identical seeds ⇒ identical routes; sparse keeps fewer samples
        assert_eq!(dt.route, st.route);
        assert!(st.trajectory.len() < dt.trajectory.len());
        assert_eq!(dt.trajectory.len(), dt.route.len());
    }

    #[test]
    fn timestamps_increase_along_route() {
        let (net, tags) = setup();
        let mut g = TripGenerator::new(
            &net,
            TripGeneratorConfig {
                min_trip_km: 2.0,
                ..Default::default()
            },
        )
        .unwrap();
        let trip = g.generate_trip(&tags);
        let times: Vec<f64> = trip.trajectory.times().collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(trip.trajectory.duration() > 0.0);
    }

    #[test]
    fn hotspot_bias_concentrates_endpoints() {
        let (net, tags) = setup();
        let cfg = TripGeneratorConfig {
            num_trips: 200,
            hotspots: 2,
            hotspot_prob: 1.0,
            hotspot_sigma_km: 0.3,
            min_trip_km: 0.0,
            ..Default::default()
        }
        .with_seed(13);
        let mut g = TripGenerator::new(&net, cfg).unwrap();
        let store = g.generate(&tags);
        // endpoint vertices should be few distinct ones relative to trips
        let mut endpoints = std::collections::HashSet::new();
        for (_, t) in store.iter() {
            endpoints.insert(t.samples()[0].node);
            endpoints.insert(t.samples().last().unwrap().node);
        }
        assert!(
            endpoints.len() < 150,
            "hotspot endpoints too dispersed: {}",
            endpoints.len()
        );
    }

    #[test]
    fn config_validation() {
        let (net, _) = setup();
        let bad = TripGeneratorConfig {
            num_trips: 0,
            ..Default::default()
        };
        assert!(TripGenerator::new(&net, bad).is_err());
        let bad = TripGeneratorConfig {
            sample_stride: 0,
            ..Default::default()
        };
        assert!(TripGenerator::new(&net, bad).is_err());
        let bad = TripGeneratorConfig {
            min_tags: 5,
            max_tags: 2,
            ..Default::default()
        };
        assert!(TripGenerator::new(&net, bad).is_err());
    }

    #[test]
    fn start_time_mixture_is_in_day_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let t = start_time(&mut rng);
            assert!((0.0..=DAY_SECONDS).contains(&t));
        }
    }
}
