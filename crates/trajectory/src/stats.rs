//! Dataset statistics (the "T1" table of the experiment suite).

use crate::TrajectoryStore;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics of a trajectory dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub count: usize,
    /// Minimum samples per trajectory.
    pub min_len: usize,
    /// Mean samples per trajectory.
    pub avg_len: f64,
    /// Maximum samples per trajectory.
    pub max_len: usize,
    /// Mean trip duration in seconds.
    pub avg_duration_s: f64,
    /// Number of distinct keywords used across the dataset.
    pub distinct_keywords: usize,
    /// Mean keywords per trajectory.
    pub avg_keywords: f64,
    /// Number of distinct vertices visited.
    pub distinct_vertices: usize,
}

impl DatasetStats {
    /// Computes statistics over `store`. Returns all-zero stats for an
    /// empty store.
    pub fn compute(store: &TrajectoryStore) -> Self {
        if store.is_empty() {
            return DatasetStats {
                count: 0,
                min_len: 0,
                avg_len: 0.0,
                max_len: 0,
                avg_duration_s: 0.0,
                distinct_keywords: 0,
                avg_keywords: 0.0,
                distinct_vertices: 0,
            };
        }
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut total_len = 0usize;
        let mut total_duration = 0.0;
        let mut total_keywords = 0usize;
        let mut keywords = HashSet::new();
        let mut vertices = HashSet::new();
        for (_, t) in store.iter() {
            min_len = min_len.min(t.len());
            max_len = max_len.max(t.len());
            total_len += t.len();
            total_duration += t.duration();
            total_keywords += t.keywords().len();
            keywords.extend(t.keywords().iter());
            vertices.extend(t.nodes());
        }
        let n = store.len() as f64;
        DatasetStats {
            count: store.len(),
            min_len,
            avg_len: total_len as f64 / n,
            max_len,
            avg_duration_s: total_duration / n,
            distinct_keywords: keywords.len(),
            avg_keywords: total_keywords as f64 / n,
            distinct_vertices: vertices.len(),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trajectories        : {}", self.count)?;
        writeln!(
            f,
            "samples/trajectory  : min {} / avg {:.1} / max {}",
            self.min_len, self.avg_len, self.max_len
        )?;
        writeln!(f, "avg duration        : {:.0} s", self.avg_duration_s)?;
        writeln!(
            f,
            "keywords            : {} distinct, {:.1} per trajectory",
            self.distinct_keywords, self.avg_keywords
        )?;
        write!(f, "distinct vertices   : {}", self.distinct_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sample, Trajectory};
    use uots_network::NodeId;
    use uots_text::{KeywordId, KeywordSet};

    fn traj(nodes: &[u32], t0: f64, kws: &[u32]) -> Trajectory {
        Trajectory::new(
            nodes
                .iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    node: NodeId(v),
                    time: t0 + i as f64 * 10.0,
                })
                .collect(),
            KeywordSet::from_ids(kws.iter().map(|&k| KeywordId(k))),
        )
        .unwrap()
    }

    #[test]
    fn stats_on_empty_store() {
        let s = DatasetStats::compute(&TrajectoryStore::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_len, 0.0);
    }

    #[test]
    fn stats_are_exact_on_known_store() {
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1, 2], 0.0, &[1, 2]));
        store.push(traj(&[2, 3], 100.0, &[2]));
        let s = DatasetStats::compute(&store);
        assert_eq!(s.count, 2);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 3);
        assert!((s.avg_len - 2.5).abs() < 1e-12);
        assert!((s.avg_duration_s - 15.0).abs() < 1e-12); // (20 + 10) / 2
        assert_eq!(s.distinct_keywords, 2);
        assert!((s.avg_keywords - 1.5).abs() < 1e-12);
        assert_eq!(s.distinct_vertices, 4);
    }

    #[test]
    fn display_renders_all_fields() {
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1], 0.0, &[5]));
        let text = DatasetStats::compute(&store).to_string();
        assert!(text.contains("trajectories"));
        assert!(text.contains("distinct vertices"));
    }

    #[test]
    fn serde_round_trip() {
        let mut store = TrajectoryStore::new();
        store.push(traj(&[0, 1], 0.0, &[5]));
        let s = DatasetStats::compute(&store);
        let json = serde_json::to_string(&s).unwrap();
        let back: DatasetStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
