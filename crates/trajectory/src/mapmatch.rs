//! Simulated GPS emission and map matching.
//!
//! The paper assumes its input trajectories "have already been map matched
//! onto the vertices of the spatial network using some map-matching
//! algorithm". Real GPS traces are unavailable offline, so this module
//! closes the loop synthetically: [`simulate_gps`] walks a ground-truth
//! route and emits noisy raw fixes, and [`map_match`] snaps raw fixes back
//! to network vertices — a nearest-vertex matcher, which is exactly the
//! fidelity the downstream algorithms assume (they never look at raw
//! coordinates again).

use crate::{Sample, Trajectory, TrajectoryError};
use rand::Rng;
use uots_index::{GridIndex, DAY_SECONDS};
use uots_network::{NodeId, Point, RoadNetwork};
use uots_text::KeywordSet;

/// A raw GPS fix: noisy position plus timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawFix {
    /// Measured position (kilometre plane, with noise).
    pub point: Point,
    /// Fix time, seconds of day.
    pub time: f64,
}

/// Walks `route` at `speed_kmh` starting at `start_time`, emitting one fix
/// every `fix_interval_s` seconds with isotropic Gaussian noise of standard
/// deviation `noise_sigma_km`. The first and last route vertices always get
/// a fix.
///
/// # Panics
///
/// Panics when the route is empty, not network-adjacent, or parameters are
/// non-positive.
pub fn simulate_gps<R: Rng + ?Sized>(
    net: &RoadNetwork,
    route: &[NodeId],
    start_time: f64,
    speed_kmh: f64,
    fix_interval_s: f64,
    noise_sigma_km: f64,
    rng: &mut R,
) -> Vec<RawFix> {
    assert!(!route.is_empty(), "route must be non-empty");
    assert!(speed_kmh > 0.0 && fix_interval_s > 0.0 && noise_sigma_km >= 0.0);

    let noise = |rng: &mut R| {
        if noise_sigma_km == 0.0 {
            return (0.0, 0.0);
        }
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let mag = noise_sigma_km * (-2.0 * u1.ln()).sqrt();
        let ang = std::f64::consts::TAU * u2;
        (mag * ang.cos(), mag * ang.sin())
    };

    // piecewise-linear position along the route
    let mut cum = vec![0.0];
    for w in route.windows(2) {
        let weight = net
            .neighbors(w[0])
            .find(|(u, _)| *u == w[1])
            .map(|(_, wt)| wt)
            .expect("route vertices must be adjacent");
        cum.push(cum.last().unwrap() + weight);
    }
    let total_km = *cum.last().unwrap();
    let duration_s = total_km / speed_kmh * 3_600.0;

    let mut fixes = Vec::new();
    let mut t = 0.0f64;
    loop {
        let clamped = t.min(duration_s);
        let target_km = if duration_s > 0.0 {
            total_km * clamped / duration_s
        } else {
            0.0
        };
        // segment containing target_km
        let seg = cum.partition_point(|&c| c <= target_km).min(cum.len() - 1);
        let pos = if seg == 0 {
            net.point(route[0])
        } else {
            let (lo, hi) = (cum[seg - 1], cum[seg]);
            let frac = if hi > lo {
                (target_km - lo) / (hi - lo)
            } else {
                0.0
            };
            net.point(route[seg - 1]).lerp(&net.point(route[seg]), frac)
        };
        let (nx, ny) = noise(rng);
        fixes.push(RawFix {
            point: pos.translate(nx, ny),
            time: (start_time + clamped).min(DAY_SECONDS),
        });
        if clamped >= duration_s {
            break;
        }
        t += fix_interval_s;
    }
    fixes
}

/// Snaps raw fixes to their nearest network vertices, collapsing runs of
/// consecutive fixes that match the same vertex (keeping the first fix time
/// of each run).
///
/// `grid` must index exactly the network's vertex positions, i.e. be built
/// as `GridIndex::build(net.points(), …)`; entry `i` is interpreted as
/// `NodeId(i)`.
///
/// # Errors
///
/// Propagates [`Trajectory::new`] validation failures (e.g. out-of-range fix
/// times) and rejects empty fix lists.
pub fn map_match(
    fixes: &[RawFix],
    grid: &GridIndex,
    keywords: KeywordSet,
) -> Result<Trajectory, TrajectoryError> {
    if fixes.is_empty() {
        return Err(TrajectoryError::Empty);
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(fixes.len());
    for fix in fixes {
        let (idx, _) = grid.nearest(&fix.point);
        let node = NodeId(idx as u32);
        if samples.last().map(|s| s.node) == Some(node) {
            continue;
        }
        samples.push(Sample {
            node,
            time: fix.time,
        });
    }
    Trajectory::new(samples, keywords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uots_network::astar::AStar;
    use uots_network::generators::{grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, Vec<NodeId>) {
        let net = grid_city(&GridCityConfig::tiny(10)).unwrap();
        let mut astar = AStar::new(&net);
        let route = astar.route(NodeId(0), NodeId(99)).unwrap().path;
        (net, route)
    }

    #[test]
    fn noiseless_gps_lies_on_route_segments() {
        let (net, route) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let fixes = simulate_gps(&net, &route, 1000.0, 30.0, 10.0, 0.0, &mut rng);
        assert!(fixes.len() > 2);
        assert_eq!(fixes[0].point, net.point(route[0]));
        assert_eq!(
            fixes.last().unwrap().point,
            net.point(*route.last().unwrap())
        );
        for w in fixes.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn map_match_recovers_noiseless_route() {
        let (net, route) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        // dense fixes so every route vertex is visited closely
        let fixes = simulate_gps(&net, &route, 0.0, 30.0, 2.0, 0.0, &mut rng);
        let grid = GridIndex::build(net.points(), 4);
        let t = map_match(&fixes, &grid, KeywordSet::empty()).unwrap();
        // the matched vertex sequence must be a subsequence of the route
        let mut route_iter = route.iter();
        for s in t.samples() {
            assert!(
                route_iter.any(|&v| v == s.node),
                "matched vertex {:?} out of route order",
                s.node
            );
        }
        assert_eq!(t.samples()[0].node, route[0]);
        assert_eq!(t.samples().last().unwrap().node, *route.last().unwrap());
    }

    #[test]
    fn map_match_with_noise_stays_near_route() {
        let (net, route) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        // noise well below half the street spacing (1 km): snapping succeeds
        let fixes = simulate_gps(&net, &route, 0.0, 30.0, 5.0, 0.05, &mut rng);
        let grid = GridIndex::build(net.points(), 4);
        let t = map_match(&fixes, &grid, KeywordSet::empty()).unwrap();
        for s in t.samples() {
            // every matched vertex is within 2 km of some route vertex
            let ok = route
                .iter()
                .any(|&v| net.point(v).distance(&net.point(s.node)) <= 2.0);
            assert!(ok);
        }
    }

    #[test]
    fn consecutive_duplicate_vertices_collapse() {
        let (net, _) = setup();
        let grid = GridIndex::build(net.points(), 4);
        // three fixes on the same corner, then one far away
        let fixes = vec![
            RawFix {
                point: Point::new(0.01, 0.0),
                time: 0.0,
            },
            RawFix {
                point: Point::new(0.0, 0.02),
                time: 5.0,
            },
            RawFix {
                point: Point::new(0.02, 0.01),
                time: 10.0,
            },
            RawFix {
                point: Point::new(5.0, 5.0),
                time: 20.0,
            },
        ];
        let t = map_match(&fixes, &grid, KeywordSet::empty()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.samples()[0].time, 0.0); // first fix time of the run
    }

    #[test]
    fn empty_fixes_is_an_error() {
        let (net, _) = setup();
        let grid = GridIndex::build(net.points(), 4);
        assert!(matches!(
            map_match(&[], &grid, KeywordSet::empty()),
            Err(TrajectoryError::Empty)
        ));
    }

    #[test]
    fn single_vertex_route() {
        let (net, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let fixes = simulate_gps(&net, &[NodeId(5)], 100.0, 30.0, 10.0, 0.0, &mut rng);
        assert_eq!(fixes.len(), 1);
        assert_eq!(fixes[0].time, 100.0);
    }
}
