//! # uots-trajectory
//!
//! Trajectory substrate for the UOTS reproduction: the network-constrained
//! trajectory model, synthetic trip generation, simulated map matching and
//! dataset statistics.
//!
//! * [`Trajectory`] / [`TrajectoryStore`] — validated, immutable
//!   trajectories with dense ids plus index construction
//!   (vertex / keyword / timestamp inverted indexes);
//! * [`TripGenerator`] — hotspot-biased shortest-path trips standing in for
//!   the paper's T-drive taxi data;
//! * [`TagSampler`] — category-correlated, Zipf-skewed textual attributes;
//! * [`mapmatch`] — simulated GPS emission and nearest-vertex map matching.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod generator;
mod live;
pub mod mapmatch;
mod model;
mod stats;
mod tags;

pub use error::TrajectoryError;
pub use generator::{GeneratedTrip, TripGenerator, TripGeneratorConfig};
pub use live::LiveSet;
pub use model::{Sample, Trajectory, TrajectoryId, TrajectoryStore};
pub use stats::DatasetStats;
pub use tags::{TagModelConfig, TagSampler};
