//! Category-correlated tag sampling.
//!
//! Real trajectory tags are not independent draws: a sightseeing trip tends
//! to carry "museum", "landmark", "photo" together. The [`TagSampler`]
//! models this with *categories* — overlapping keyword pools — plus a global
//! Zipf background, so generated tag sets exhibit both co-occurrence and the
//! frequency skew that textual pruning exploits.

use rand::Rng;
use uots_text::{KeywordId, KeywordSet, Vocabulary, Zipf};

/// Configuration for [`TagSampler::synthetic`].
#[derive(Debug, Clone, PartialEq)]
pub struct TagModelConfig {
    /// Number of distinct keywords in the synthetic vocabulary.
    pub vocab_size: usize,
    /// Number of categories (activity profiles).
    pub num_categories: usize,
    /// Keywords per category pool.
    pub keywords_per_category: usize,
    /// Zipf exponent for category popularity.
    pub category_skew: f64,
    /// Zipf exponent for keyword popularity inside a category pool.
    pub keyword_skew: f64,
    /// Probability that a tag is drawn from the global background
    /// distribution instead of the trip's category pool.
    pub background_prob: f64,
}

impl Default for TagModelConfig {
    fn default() -> Self {
        TagModelConfig {
            vocab_size: 400,
            num_categories: 12,
            keywords_per_category: 40,
            category_skew: 0.8,
            keyword_skew: 1.0,
            background_prob: 0.15,
        }
    }
}

/// Samples keyword sets for generated trips.
#[derive(Debug, Clone)]
pub struct TagSampler {
    vocab_len: usize,
    /// Per-category keyword pools (ids into the vocabulary).
    categories: Vec<Vec<KeywordId>>,
    category_dist: Zipf,
    keyword_dist: Zipf,
    background_dist: Zipf,
    background_prob: f64,
}

impl TagSampler {
    /// Builds a synthetic vocabulary (words `tag000`, `tag001`, …) and a
    /// category model over it. Returns the sampler together with the
    /// vocabulary so callers can resolve ids back to strings.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero sizes, probabilities
    /// outside `[0, 1]`).
    pub fn synthetic<R: Rng + ?Sized>(cfg: &TagModelConfig, rng: &mut R) -> (Self, Vocabulary) {
        assert!(cfg.vocab_size > 0 && cfg.num_categories > 0 && cfg.keywords_per_category > 0);
        assert!((0.0..=1.0).contains(&cfg.background_prob));
        let mut vocab = Vocabulary::new();
        for i in 0..cfg.vocab_size {
            vocab.intern(&format!("tag{i:03}")).expect("non-empty tag");
        }
        // category pools: contiguous-ish blocks with random extras, so pools
        // overlap partially (categories share generic tags)
        let per = cfg.keywords_per_category.min(cfg.vocab_size);
        let categories = (0..cfg.num_categories)
            .map(|c| {
                let base = (c * per / 2) % cfg.vocab_size;
                let mut pool: Vec<KeywordId> = (0..per)
                    .map(|i| KeywordId(((base + i) % cfg.vocab_size) as u32))
                    .collect();
                // a few random cross-category tags
                for _ in 0..per / 8 {
                    pool.push(KeywordId(rng.gen_range(0..cfg.vocab_size) as u32));
                }
                pool.sort_unstable();
                pool.dedup();
                pool
            })
            .collect();
        let sampler = TagSampler {
            vocab_len: cfg.vocab_size,
            categories,
            category_dist: Zipf::new(cfg.num_categories, cfg.category_skew),
            keyword_dist: Zipf::new(per, cfg.keyword_skew),
            background_dist: Zipf::new(cfg.vocab_size, cfg.keyword_skew),
            background_prob: cfg.background_prob,
        };
        (sampler, vocab)
    }

    /// Vocabulary size the sampler draws from.
    pub fn vocab_len(&self) -> usize {
        self.vocab_len
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Draws a category for a trip.
    pub fn sample_category<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.category_dist.sample(rng)
    }

    /// Draws `count` tags for a trip of the given category. The returned set
    /// may be smaller than `count` when duplicates collapse.
    pub fn sample_tags<R: Rng + ?Sized>(
        &self,
        category: usize,
        count: usize,
        rng: &mut R,
    ) -> KeywordSet {
        assert!(category < self.categories.len(), "category out of range");
        let pool = &self.categories[category];
        KeywordSet::from_ids((0..count).map(|_| {
            if rng.gen::<f64>() < self.background_prob {
                KeywordId(self.background_dist.sample(rng) as u32)
            } else {
                let rank = self.keyword_dist.sample(rng).min(pool.len() - 1);
                pool[rank]
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(seed: u64) -> (TagSampler, Vocabulary) {
        let mut rng = StdRng::seed_from_u64(seed);
        TagSampler::synthetic(&TagModelConfig::default(), &mut rng)
    }

    #[test]
    fn vocabulary_matches_config() {
        let (s, v) = sampler(1);
        assert_eq!(v.len(), 400);
        assert_eq!(s.vocab_len(), 400);
        assert_eq!(s.num_categories(), 12);
        assert_eq!(v.word(KeywordId(0)), Some("tag000"));
        assert_eq!(v.word(KeywordId(399)), Some("tag399"));
    }

    #[test]
    fn tags_are_in_vocabulary_range() {
        let (s, _) = sampler(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let cat = s.sample_category(&mut rng);
            let tags = s.sample_tags(cat, 5, &mut rng);
            assert!(tags.len() <= 5);
            assert!(!tags.is_empty());
            for id in tags.iter() {
                assert!(id.index() < 400);
            }
        }
    }

    #[test]
    fn same_category_trips_share_more_tags_than_cross_category() {
        let (s, _) = sampler(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut same = 0usize;
        let mut cross = 0usize;
        for _ in 0..300 {
            let a = s.sample_tags(0, 4, &mut rng);
            let b = s.sample_tags(0, 4, &mut rng);
            let c = s.sample_tags(6, 4, &mut rng);
            same += a.intersection_len(&b);
            cross += a.intersection_len(&c);
        }
        assert!(
            same > cross,
            "same-category overlap {same} should exceed cross-category {cross}"
        );
    }

    #[test]
    fn category_distribution_is_skewed() {
        let (s, _) = sampler(6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; s.num_categories()];
        for _ in 0..10_000 {
            counts[s.sample_category(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[s.num_categories() - 1]);
    }

    #[test]
    fn determinism_under_seed() {
        let (s1, _) = sampler(8);
        let (s2, _) = sampler(8);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let c1 = s1.sample_category(&mut r1);
            let c2 = s2.sample_category(&mut r2);
            assert_eq!(c1, c2);
            assert_eq!(
                s1.sample_tags(c1, 3, &mut r1),
                s2.sample_tags(c2, 3, &mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "category out of range")]
    fn foreign_category_panics() {
        let (s, _) = sampler(10);
        let mut rng = StdRng::seed_from_u64(11);
        s.sample_tags(99, 3, &mut rng);
    }
}
