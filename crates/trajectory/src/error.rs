//! Error type for trajectory construction and generation.

/// Errors produced while validating or generating trajectories.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryError {
    /// A trajectory must have at least one sample.
    Empty,
    /// A timestamp is non-finite or outside the 24-hour axis.
    BadTimestamp {
        /// Sample index of the offending timestamp.
        index: usize,
        /// The offending value.
        time: f64,
    },
    /// Timestamps must be nondecreasing.
    TimeNotMonotone {
        /// Sample index where time decreased.
        index: usize,
    },
    /// A generator configuration failed validation.
    BadGeneratorConfig(String),
}

impl std::fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryError::Empty => write!(f, "trajectory has no samples"),
            TrajectoryError::BadTimestamp { index, time } => {
                write!(f, "sample {index} has bad timestamp {time}")
            }
            TrajectoryError::TimeNotMonotone { index } => {
                write!(f, "timestamp decreases at sample {index}")
            }
            TrajectoryError::BadGeneratorConfig(msg) => {
                write!(f, "bad generator config: {msg}")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TrajectoryError::Empty.to_string().contains("no samples"));
        assert!(TrajectoryError::BadTimestamp {
            index: 3,
            time: -1.0
        }
        .to_string()
        .contains("sample 3"));
        assert!(TrajectoryError::TimeNotMonotone { index: 2 }
            .to_string()
            .contains("sample 2"));
    }
}
