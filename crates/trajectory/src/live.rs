//! Liveness mask over an append-only [`TrajectoryStore`].
//!
//! The store's ids are dense and stable — retiring a trajectory must not
//! renumber the survivors, or every index, cached result and tie-break
//! would shift. A [`LiveSet`] is the resolution: a bitmask tracking which
//! ids are currently *live*. Ingest appends to the store and marks the new
//! id live; retirement clears the bit and leaves the trajectory in place.
//! Query paths consult the mask (directly or through indexes built over
//! the live subset) so retired trips are invisible without ever moving.

use crate::{TrajectoryId, TrajectoryStore};
use serde::{Deserialize, Serialize};

/// A growable bitmask of live trajectory ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSet {
    bits: Vec<u64>,
    len: usize,
    live: usize,
}

impl LiveSet {
    /// A mask over `len` ids, all live.
    pub fn all_live(len: usize) -> Self {
        let mut bits = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                // keep ghost bits beyond `len` clear, so masks built here
                // compare equal (derived `Eq`) to masks grown bit-by-bit
                // and the raw words round-trip through persistence
                *last = u64::MAX >> (64 - len % 64);
            }
        }
        LiveSet {
            bits,
            len,
            live: len,
        }
    }

    /// A mask over `len` ids, none live.
    pub fn none_live(len: usize) -> Self {
        LiveSet {
            bits: vec![0u64; len.div_ceil(64)],
            len,
            live: 0,
        }
    }

    /// Number of ids covered (== the store length it masks).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers no ids at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live ids.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Whether `id` is covered and live. Ids beyond the mask are dead —
    /// a snapshot taken before an append must not see the new trajectory.
    #[inline]
    pub fn is_live(&self, id: TrajectoryId) -> bool {
        let i = id.index();
        i < self.len && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Extends the mask to cover ids up to `len`, newly covered ids live.
    /// Shrinking is not supported (ids are never reclaimed).
    pub fn grow_to(&mut self, len: usize) {
        assert!(len >= self.len, "LiveSet never shrinks");
        self.bits.resize(len.div_ceil(64), 0);
        for i in self.len..len {
            self.bits[i / 64] |= 1u64 << (i % 64);
        }
        self.live += len - self.len;
        self.len = len;
    }

    /// Marks `id` dead; returns whether it was live.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not covered by the mask.
    pub fn retire(&mut self, id: TrajectoryId) -> bool {
        let i = id.index();
        assert!(i < self.len, "retire of uncovered id {id}");
        let mask = 1u64 << (i % 64);
        let was = self.bits[i / 64] & mask != 0;
        if was {
            self.bits[i / 64] &= !mask;
            self.live -= 1;
        }
        was
    }

    /// Marks `id` live again; returns whether it was dead.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not covered by the mask.
    pub fn revive(&mut self, id: TrajectoryId) -> bool {
        let i = id.index();
        assert!(i < self.len, "revive of uncovered id {id}");
        let mask = 1u64 << (i % 64);
        let was = self.bits[i / 64] & mask == 0;
        if was {
            self.bits[i / 64] |= mask;
            self.live += 1;
        }
        was
    }

    /// Iterator over the live ids in ascending order.
    pub fn iter_live(&self) -> impl Iterator<Item = TrajectoryId> + '_ {
        (0..self.len)
            .filter(|&i| self.bits[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|i| TrajectoryId(i as u32))
    }

    /// The raw bitmask words backing the mask (64 ids per word, LSB =
    /// lowest id). Exposed for binary persistence (checkpoints); pair with
    /// [`LiveSet::from_words`] to round-trip.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a mask over `len` ids from raw words, as produced by
    /// [`LiveSet::words`]. Returns `None` when the word count does not
    /// match `len` or a bit beyond `len` is set (corrupt persistence must
    /// be detected, not silently truncated). The live count is recomputed
    /// from the bits, never trusted from the caller.
    pub fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return None; // ghost ids beyond the mask
                }
            }
        }
        let live = words.iter().map(|w| w.count_ones() as usize).sum();
        Some(LiveSet {
            bits: words,
            len,
            live,
        })
    }

    /// Copies the surviving trajectories of `store` into a fresh store with
    /// compacted (renumbered) ids, returning the store and the old → new id
    /// map. Compaction preserves id order, so relative tie-break order is
    /// unchanged — the property the ingest/rebuild differential oracle
    /// relies on.
    pub fn compact(&self, store: &TrajectoryStore) -> (TrajectoryStore, Vec<Option<TrajectoryId>>) {
        assert_eq!(self.len, store.len(), "mask does not cover the store");
        let mut out = TrajectoryStore::with_capacity(self.live);
        let mut map = vec![None; store.len()];
        for id in self.iter_live() {
            map[id.index()] = Some(out.push(store.get(id).clone()));
        }
        (out, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sample, Trajectory};
    use uots_network::NodeId;
    use uots_text::KeywordSet;

    fn traj(v: u32) -> Trajectory {
        Trajectory::new(
            vec![Sample {
                node: NodeId(v),
                time: 0.0,
            }],
            KeywordSet::empty(),
        )
        .unwrap()
    }

    #[test]
    fn retire_revive_roundtrip() {
        let mut l = LiveSet::all_live(70);
        assert_eq!(l.num_live(), 70);
        assert!(l.is_live(TrajectoryId(69)));
        assert!(l.retire(TrajectoryId(69)));
        assert!(!l.retire(TrajectoryId(69)), "double retire is a no-op");
        assert!(!l.is_live(TrajectoryId(69)));
        assert_eq!(l.num_live(), 69);
        assert!(l.revive(TrajectoryId(69)));
        assert!(!l.revive(TrajectoryId(69)), "double revive is a no-op");
        assert_eq!(l.num_live(), 70);
    }

    #[test]
    fn grow_covers_new_ids_live() {
        let mut l = LiveSet::none_live(3);
        l.grow_to(66);
        assert_eq!(l.num_live(), 63);
        assert!(!l.is_live(TrajectoryId(0)));
        assert!(l.is_live(TrajectoryId(3)));
        assert!(l.is_live(TrajectoryId(65)));
        assert!(!l.is_live(TrajectoryId(66)), "beyond the mask is dead");
    }

    #[test]
    fn iter_live_ascending() {
        let mut l = LiveSet::all_live(5);
        l.retire(TrajectoryId(1));
        l.retire(TrajectoryId(3));
        let ids: Vec<u32> = l.iter_live().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }

    #[test]
    fn compact_preserves_order_and_maps_ids() {
        let mut store = TrajectoryStore::new();
        for v in 0..5 {
            store.push(traj(v));
        }
        let mut l = LiveSet::all_live(5);
        l.retire(TrajectoryId(0));
        l.retire(TrajectoryId(3));
        let (out, map) = l.compact(&store);
        assert_eq!(out.len(), 3);
        assert_eq!(map[0], None);
        assert_eq!(map[1], Some(TrajectoryId(0)));
        assert_eq!(map[2], Some(TrajectoryId(1)));
        assert_eq!(map[3], None);
        assert_eq!(map[4], Some(TrajectoryId(2)));
        // surviving content in the original relative order
        assert_eq!(out.get(TrajectoryId(1)).samples()[0].node, NodeId(2));
    }

    #[test]
    fn words_round_trip_and_reject_corruption() {
        let mut l = LiveSet::all_live(70);
        l.retire(TrajectoryId(7));
        l.retire(TrajectoryId(69));
        let back = LiveSet::from_words(70, l.words().to_vec()).unwrap();
        assert_eq!(l, back);
        assert_eq!(back.num_live(), 68);
        // wrong word count
        assert!(LiveSet::from_words(70, vec![0u64; 1]).is_none());
        assert!(LiveSet::from_words(70, vec![0u64; 3]).is_none());
        // ghost bit beyond len
        let mut words = l.words().to_vec();
        words[1] |= 1u64 << 63; // id 127 > 69
        assert!(LiveSet::from_words(70, words).is_none());
        // exact multiples of 64 have no tail to validate
        assert!(LiveSet::from_words(64, vec![u64::MAX]).is_some());
        assert!(LiveSet::from_words(0, vec![]).is_some());
    }

    #[test]
    fn construction_paths_agree_on_representation() {
        // all_live must not leave ghost bits in the tail word: a mask built
        // whole and one grown bit-by-bit are semantically equal and must be
        // representationally equal (derived Eq, persisted words)
        let mut grown = LiveSet::none_live(0);
        grown.grow_to(70);
        assert_eq!(LiveSet::all_live(70), grown);
        assert_eq!(LiveSet::all_live(70).words(), grown.words());
    }

    #[test]
    fn serde_round_trip() {
        let mut l = LiveSet::all_live(10);
        l.retire(TrajectoryId(7));
        let json = serde_json::to_string(&l).unwrap();
        let back: LiveSet = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
