//! Compact binary persistence for datasets.
//!
//! A built [`Dataset`](crate::Dataset) takes noticeable time to generate
//! (one A* route per trip) and serializes to very large JSON; this module
//! provides a versioned little-endian binary format — roughly 10× smaller
//! and much faster to load — so experiment datasets can be built once and
//! reused across bench runs. Indexes are *not* stored: they are rebuilt on
//! load (cheaper than their serialized size).
//!
//! Format `UOTSDS2` (current):
//!
//! ```text
//! magic   8 B  "UOTSDS2\0"
//! name    u32 len + utf8
//! tags    u64 seed + TagModelConfig (6 fields)
//! network u32 |V|; |V| × (f64 x, f64 y); u32 |E|; |E| × (u32 a, u32 b, f64 w)
//! vocab   u32 len; len × (u16 len + utf8)
//! vtab    u16 version; u32 byte_len; payload (versioned vocab table)
//!           v1 payload: u32 count; count × u32 interned keyword id
//! store   u32 count; per trajectory:
//!           u32 samples; samples × (u32 node, f64 time);
//!           u32 keywords; keywords × u32
//! ```
//!
//! The `vtab` section pins the word → dense-[`KeywordId`] interning the
//! layout tables (`uots_core::KeywordBlocks`) are built over. It is
//! length-framed, so readers skip payload versions they do not know.
//! Legacy `UOTSDS1` payloads (identical but with no `vtab` section) still
//! load: the interning is derived on load from vocabulary order, which is
//! exactly what the v1 table records.

use crate::{Dataset, DatasetConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use uots_index::GridIndex;
use uots_network::{NetworkBuilder, NodeId, Point, RoadNetwork};
use uots_text::{KeywordId, KeywordSet, Vocabulary};
use uots_trajectory::{LiveSet, Sample, TagModelConfig, TagSampler, Trajectory, TrajectoryStore};

const MAGIC: &[u8; 8] = b"UOTSDS2\0";
const MAGIC_V1: &[u8; 8] = b"UOTSDS1\0";
const CKPT_MAGIC: &[u8; 8] = b"UOTSCKP1";

/// Version of the vocab-table (`vtab`) section written by [`save`].
const VOCAB_TABLE_VERSION: u16 = 1;

/// Errors from [`load`] / [`load_file`].
#[derive(Debug)]
pub enum PersistError {
    /// The payload does not start with the format magic.
    BadMagic,
    /// The payload ended before a field was complete.
    Truncated(&'static str),
    /// A decoded value failed validation (counts, utf8, graph/trajectory
    /// invariants).
    Invalid(String),
    /// File I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a UOTSDS1/UOTSDS2 payload"),
            PersistError::Truncated(what) => write!(f, "payload truncated in {what}"),
            PersistError::Invalid(m) => write!(f, "invalid payload: {m}"),
            PersistError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn need(buf: &impl Buf, n: usize, what: &'static str) -> Result<(), PersistError> {
    if buf.remaining() < n {
        Err(PersistError::Truncated(what))
    } else {
        Ok(())
    }
}

/// Serializes a dataset to the current (`UOTSDS2`) binary format.
pub fn save(ds: &Dataset, tag_cfg: &TagModelConfig, tag_seed: u64) -> Bytes {
    save_impl(ds, tag_cfg, tag_seed, true)
}

/// Serializes a dataset to the legacy `UOTSDS1` format (no vocab-table
/// section). Kept for backward-compatibility tests: [`load`] must keep
/// accepting pre-vocab-table datasets indefinitely.
pub fn save_legacy_v1(ds: &Dataset, tag_cfg: &TagModelConfig, tag_seed: u64) -> Bytes {
    save_impl(ds, tag_cfg, tag_seed, false)
}

fn save_impl(ds: &Dataset, tag_cfg: &TagModelConfig, tag_seed: u64, v2: bool) -> Bytes {
    let mut out = BytesMut::with_capacity(
        64 + ds.network.num_nodes() * 16 + ds.network.num_edges() * 16 + ds.store.len() * 64,
    );
    out.put_slice(if v2 { MAGIC } else { MAGIC_V1 });
    out.put_u32_le(ds.name.len() as u32);
    out.put_slice(ds.name.as_bytes());

    out.put_u64_le(tag_seed);
    out.put_u32_le(tag_cfg.vocab_size as u32);
    out.put_u32_le(tag_cfg.num_categories as u32);
    out.put_u32_le(tag_cfg.keywords_per_category as u32);
    out.put_f64_le(tag_cfg.category_skew);
    out.put_f64_le(tag_cfg.keyword_skew);
    out.put_f64_le(tag_cfg.background_prob);

    write_network(&mut out, &ds.network);
    write_vocab(&mut out, &ds.vocab);
    if v2 {
        write_vocab_table(&mut out, &ds.vocab);
    }
    write_store(&mut out, &ds.store);
    out.freeze()
}

fn write_network(out: &mut BytesMut, network: &RoadNetwork) {
    out.put_u32_le(network.num_nodes() as u32);
    for p in network.points() {
        out.put_f64_le(p.x);
        out.put_f64_le(p.y);
    }
    out.put_u32_le(network.num_edges() as u32);
    for e in network.edges() {
        out.put_u32_le(e.a.0);
        out.put_u32_le(e.b.0);
        out.put_f64_le(e.weight);
    }
}

fn write_vocab(out: &mut BytesMut, vocab: &Vocabulary) {
    out.put_u32_le(vocab.len() as u32);
    for (_, word) in vocab.iter() {
        out.put_u16_le(word.len() as u16);
        out.put_slice(word.as_bytes());
    }
}

fn write_vocab_table(out: &mut BytesMut, vocab: &Vocabulary) {
    out.put_u16_le(VOCAB_TABLE_VERSION);
    let byte_len = 4 + 4 * vocab.len();
    out.put_u32_le(byte_len as u32);
    out.put_u32_le(vocab.len() as u32);
    for (id, _) in vocab.iter() {
        out.put_u32_le(id.0);
    }
}

fn write_store(out: &mut BytesMut, store: &TrajectoryStore) {
    out.put_u32_le(store.len() as u32);
    for (_, t) in store.iter() {
        out.put_u32_le(t.len() as u32);
        for s in t.samples() {
            out.put_u32_le(s.node.0);
            out.put_f64_le(s.time);
        }
        out.put_u32_le(t.keywords().len() as u32);
        for k in t.keywords().iter() {
            out.put_u32_le(k.0);
        }
    }
}

/// Deserializes a dataset and rebuilds every index. Accepts the current
/// `UOTSDS2` format and the legacy `UOTSDS1` (no vocab-table section;
/// the interning is derived on load from vocabulary order).
pub fn load(mut buf: &[u8]) -> Result<Dataset, PersistError> {
    need(&buf, MAGIC.len(), "magic")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    let has_vocab_table = match &magic {
        m if m == MAGIC => true,
        m if m == MAGIC_V1 => false,
        _ => return Err(PersistError::BadMagic),
    };

    let name = read_string(&mut buf, "name")?;

    need(&buf, 8 + 3 * 4 + 3 * 8, "tag config")?;
    let tag_seed = buf.get_u64_le();
    let tag_cfg = TagModelConfig {
        vocab_size: buf.get_u32_le() as usize,
        num_categories: buf.get_u32_le() as usize,
        keywords_per_category: buf.get_u32_le() as usize,
        category_skew: buf.get_f64_le(),
        keyword_skew: buf.get_f64_le(),
        background_prob: buf.get_f64_le(),
    };

    let network = read_network(&mut buf)?;
    let vocab = read_vocab(&mut buf)?;
    if has_vocab_table {
        read_vocab_table(&mut buf, &vocab)?;
    }
    let store = read_store(&mut buf, &network, &vocab)?;

    // rebuild the deterministic tag sampler; its internally derived
    // vocabulary must match the stored one
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(tag_seed);
    let (tags, regenerated_vocab) = TagSampler::synthetic(&tag_cfg, &mut rng);
    if regenerated_vocab.len() != vocab.len() {
        return Err(PersistError::Invalid(format!(
            "tag sampler vocabulary mismatch: stored {}, regenerated {}",
            vocab.len(),
            regenerated_vocab.len()
        )));
    }

    // checkpoints now gate recovery correctness, so a payload followed by
    // anything — torn rewrite, concatenated file, junk — is corruption,
    // not something to silently ignore
    if buf.remaining() > 0 {
        return Err(PersistError::Invalid(format!(
            "{} trailing bytes after a complete payload",
            buf.remaining()
        )));
    }

    let vertex_index = store.build_vertex_index(network.num_nodes());
    let keyword_index = store.build_keyword_index(vocab.len());
    let grid = GridIndex::build(network.points(), 8);
    Ok(Dataset {
        name,
        network,
        store,
        vocab,
        tags,
        vertex_index,
        keyword_index,
        grid,
    })
}

fn read_string(buf: &mut &[u8], what: &'static str) -> Result<String, PersistError> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, what)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| PersistError::Invalid(format!("{what}: bad utf8")))
}

fn read_network(buf: &mut &[u8]) -> Result<RoadNetwork, PersistError> {
    need(buf, 4, "node count")?;
    let n = buf.get_u32_le() as usize;
    need(buf, n * 16, "node coordinates")?;
    let mut b = NetworkBuilder::with_capacity(n, n * 2);
    for _ in 0..n {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        // corrupted coordinate floats would poison every geometric
        // structure downstream; 1e7 km comfortably exceeds any planet
        if !x.is_finite() || !y.is_finite() || x.abs() > 1e7 || y.abs() > 1e7 {
            return Err(PersistError::Invalid(format!(
                "node coordinate ({x}, {y}) out of range"
            )));
        }
        b.add_node(Point::new(x, y));
    }
    need(buf, 4, "edge count")?;
    let m = buf.get_u32_le() as usize;
    need(buf, m * 16, "edges")?;
    for _ in 0..m {
        let a = NodeId(buf.get_u32_le());
        let c = NodeId(buf.get_u32_le());
        let w = buf.get_f64_le();
        b.add_edge(a, c, Some(w))
            .map_err(|e| PersistError::Invalid(format!("edge: {e}")))?;
    }
    b.build()
        .map_err(|e| PersistError::Invalid(format!("network: {e}")))
}

fn read_vocab(buf: &mut &[u8]) -> Result<Vocabulary, PersistError> {
    need(buf, 4, "vocab size")?;
    let n = buf.get_u32_le() as usize;
    let mut vocab = Vocabulary::new();
    for _ in 0..n {
        need(buf, 2, "vocab word length")?;
        let len = buf.get_u16_le() as usize;
        need(buf, len, "vocab word")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let word =
            String::from_utf8(raw).map_err(|_| PersistError::Invalid("vocab: bad utf8".into()))?;
        vocab
            .intern(&word)
            .ok_or_else(|| PersistError::Invalid("vocab: empty word".into()))?;
    }
    if vocab.len() != n {
        return Err(PersistError::Invalid(
            "vocab: duplicate words collapsed".into(),
        ));
    }
    Ok(vocab)
}

/// Reads and validates the length-framed vocab-table section. Known
/// versions must record exactly the interning [`read_vocab`] derives;
/// unknown (newer) versions are skipped over their declared byte length,
/// keeping old readers forward-compatible with extended tables.
fn read_vocab_table(buf: &mut &[u8], vocab: &Vocabulary) -> Result<(), PersistError> {
    need(buf, 6, "vocab table header")?;
    let version = buf.get_u16_le();
    let byte_len = buf.get_u32_le() as usize;
    need(buf, byte_len, "vocab table payload")?;
    if version != VOCAB_TABLE_VERSION {
        buf.advance(byte_len); // length-framed: skip an unknown version
        return Ok(());
    }
    if byte_len < 4 {
        return Err(PersistError::Invalid(format!(
            "vocab table v1 payload of {byte_len} bytes cannot hold its count"
        )));
    }
    let count = buf.get_u32_le() as usize;
    if byte_len != 4 + 4 * count {
        return Err(PersistError::Invalid(format!(
            "vocab table v1 declares {byte_len} bytes but holds {count} entries"
        )));
    }
    if count != vocab.len() {
        return Err(PersistError::Invalid(format!(
            "vocab table covers {count} words but the vocabulary holds {}",
            vocab.len()
        )));
    }
    for expect in 0..count {
        let id = buf.get_u32_le();
        if id as usize != expect {
            return Err(PersistError::Invalid(format!(
                "vocab table entry {expect} maps to interned id {id}; \
                 the table must match vocabulary interning order"
            )));
        }
    }
    Ok(())
}

fn read_store(
    buf: &mut &[u8],
    network: &RoadNetwork,
    vocab: &Vocabulary,
) -> Result<TrajectoryStore, PersistError> {
    need(buf, 4, "trajectory count")?;
    let count = buf.get_u32_le() as usize;
    // every serialized trajectory occupies ≥ 20 bytes (two counters + one
    // sample), so a count beyond that bound is corruption — reject before
    // reserving capacity for it
    if count > buf.remaining() / 20 {
        return Err(PersistError::Invalid(format!(
            "trajectory count {count} exceeds what the payload could hold"
        )));
    }
    let mut store = TrajectoryStore::with_capacity(count);
    for _ in 0..count {
        need(buf, 4, "sample count")?;
        let ns = buf.get_u32_le() as usize;
        need(buf, ns * 12, "samples")?;
        let mut samples = Vec::with_capacity(ns);
        for _ in 0..ns {
            let node = NodeId(buf.get_u32_le());
            let time = buf.get_f64_le();
            if !network.contains_node(node) {
                return Err(PersistError::Invalid(format!(
                    "trajectory references unknown vertex {node}"
                )));
            }
            samples.push(Sample { node, time });
        }
        need(buf, 4, "keyword count")?;
        let nk = buf.get_u32_le() as usize;
        need(buf, nk * 4, "keywords")?;
        let mut kws = Vec::with_capacity(nk);
        for _ in 0..nk {
            let k = KeywordId(buf.get_u32_le());
            if k.index() >= vocab.len() {
                return Err(PersistError::Invalid(format!(
                    "trajectory references unknown keyword {k}"
                )));
            }
            kws.push(k);
        }
        let t = Trajectory::new(samples, KeywordSet::from_ids(kws))
            .map_err(|e| PersistError::Invalid(format!("trajectory: {e}")))?;
        store.push(t);
    }
    Ok(store)
}

/// Saves a dataset to `path`, atomically: written to a `.tmp` sibling,
/// synced, renamed over the target, and the parent directory is synced so
/// the rename itself is durable. A crash or storage fault mid-save never
/// leaves a torn dataset under the final name.
///
/// # Errors
///
/// I/O errors only; serialization itself is infallible.
pub fn save_file(
    ds: &Dataset,
    cfg: &DatasetConfig,
    path: impl AsRef<std::path::Path>,
) -> Result<(), PersistError> {
    save_file_with(&uots_storage::StdFs, ds, cfg, path.as_ref())
}

/// [`save_file`] through an explicit storage backend.
pub fn save_file_with(
    backend: &dyn uots_storage::StorageBackend,
    ds: &Dataset,
    cfg: &DatasetConfig,
    path: &std::path::Path,
) -> Result<(), PersistError> {
    let bytes = save(ds, &cfg.tags, cfg.tag_seed);
    uots_storage::write_atomic(backend, path, &bytes)?;
    Ok(())
}

/// Loads a dataset from `path`.
///
/// # Errors
///
/// See [`PersistError`].
pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Dataset, PersistError> {
    let raw = std::fs::read(path)?;
    load(&raw)
}

/// A durable snapshot of the live-ingest state: the epoch master store
/// (retired slots included — ids are dense and never renumbered), the
/// liveness mask over it, and the WAL high-water mark it covers.
///
/// Format `UOTSCKP1` (little-endian, whole-payload CRC32 trailer):
///
/// ```text
/// magic   8 B  "UOTSCKP1"
/// epoch   u64  epoch counter at checkpoint time
/// lsn     u64  WAL high-water mark: last batch LSN applied to this state
/// network as in UOTSDS1
/// vocab   as in UOTSDS1
/// store   as in UOTSDS1 (the *master* store, retired slots included)
/// live    u32 len; ⌈len/64⌉ × u64 mask words
/// crc     u32  CRC32 (IEEE) of every preceding byte, magic included
/// ```
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Road network shared by every epoch (cache-survival invariant).
    pub network: RoadNetwork,
    /// Keyword vocabulary.
    pub vocab: Vocabulary,
    /// Master trajectory store, retired slots included.
    pub store: TrajectoryStore,
    /// Liveness mask over `store`.
    pub live: LiveSet,
    /// Epoch counter at checkpoint time.
    pub epoch: u64,
    /// Last WAL batch LSN whose effects are contained in this checkpoint;
    /// recovery replays strictly newer records on top.
    pub lsn: u64,
}

/// Serializes a checkpoint (see [`Checkpoint`] for the format).
pub fn save_checkpoint(ck: &Checkpoint) -> Bytes {
    let mut out = BytesMut::with_capacity(
        64 + ck.network.num_nodes() * 16 + ck.network.num_edges() * 16 + ck.store.len() * 64,
    );
    out.put_slice(CKPT_MAGIC);
    out.put_u64_le(ck.epoch);
    out.put_u64_le(ck.lsn);
    write_network(&mut out, &ck.network);
    write_vocab(&mut out, &ck.vocab);
    write_store(&mut out, &ck.store);
    out.put_u32_le(ck.live.len() as u32);
    for &w in ck.live.words() {
        out.put_u64_le(w);
    }
    let crc = crc32(out.as_slice());
    out.put_u32_le(crc);
    out.freeze()
}

/// Deserializes and fully validates a checkpoint. Any corruption — bad
/// magic, CRC mismatch, truncation, dangling references, trailing bytes —
/// is an error; recovery falls back to an older checkpoint or the base
/// dataset rather than trusting a damaged snapshot.
pub fn load_checkpoint(raw: &[u8]) -> Result<Checkpoint, PersistError> {
    if raw.len() < CKPT_MAGIC.len() + 4 {
        return Err(PersistError::Truncated("checkpoint header"));
    }
    if &raw[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (body, trailer) = raw.split_at(raw.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let actual = crc32(body);
    if stored != actual {
        return Err(PersistError::Invalid(format!(
            "checkpoint crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut buf = &body[CKPT_MAGIC.len()..];
    need(&buf, 16, "checkpoint meta")?;
    let epoch = buf.get_u64_le();
    let lsn = buf.get_u64_le();
    let network = read_network(&mut buf)?;
    let vocab = read_vocab(&mut buf)?;
    let store = read_store(&mut buf, &network, &vocab)?;
    need(&buf, 4, "live mask length")?;
    let live_len = buf.get_u32_le() as usize;
    if live_len != store.len() {
        return Err(PersistError::Invalid(format!(
            "live mask covers {live_len} ids but the store holds {}",
            store.len()
        )));
    }
    let words_needed = live_len.div_ceil(64);
    need(&buf, words_needed * 8, "live mask words")?;
    let words: Vec<u64> = (0..words_needed).map(|_| buf.get_u64_le()).collect();
    let live = LiveSet::from_words(live_len, words)
        .ok_or_else(|| PersistError::Invalid("live mask has ghost ids beyond its length".into()))?;
    if buf.remaining() > 0 {
        return Err(PersistError::Invalid(format!(
            "{} trailing bytes after a complete checkpoint",
            buf.remaining()
        )));
    }
    Ok(Checkpoint {
        network,
        vocab,
        store,
        live,
        epoch,
        lsn,
    })
}

/// Saves a checkpoint to `path`, atomically: written to a `.tmp` sibling,
/// synced, renamed over the target, and the parent directory is synced —
/// the directory fsync is what makes the *rename* durable, and its error
/// is propagated like any other (a swallowed one would report a
/// checkpoint as saved that a power loss could still roll back).
pub fn save_checkpoint_file(
    ck: &Checkpoint,
    path: impl AsRef<std::path::Path>,
) -> Result<(), PersistError> {
    save_checkpoint_file_with(&uots_storage::StdFs, ck, path.as_ref())
}

/// [`save_checkpoint_file`] through an explicit storage backend.
pub fn save_checkpoint_file_with(
    backend: &dyn uots_storage::StorageBackend,
    ck: &Checkpoint,
    path: &std::path::Path,
) -> Result<(), PersistError> {
    let bytes = save_checkpoint(ck);
    uots_storage::write_atomic(backend, path, &bytes)?;
    Ok(())
}

/// Loads and validates a checkpoint from `path`.
pub fn load_checkpoint_file(path: impl AsRef<std::path::Path>) -> Result<Checkpoint, PersistError> {
    load_checkpoint_file_with(&uots_storage::StdFs, path.as_ref())
}

/// [`load_checkpoint_file`] through an explicit storage backend.
pub fn load_checkpoint_file_with(
    backend: &dyn uots_storage::StorageBackend,
    path: &std::path::Path,
) -> Result<Checkpoint, PersistError> {
    let raw = backend.read(path)?;
    load_checkpoint(&raw)
}

/// CRC32 (IEEE 802.3, reflected) — implemented here because checkpoints
/// must be self-validating and the workspace vendors no checksum crate.
/// Nibble-table variant: tiny, and fast enough for checkpoint-sized blobs.
fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1db7_1064,
        0x3b6e_20c8,
        0x26d9_30ac,
        0x76dc_4190,
        0x6b6b_51f4,
        0x4db2_6158,
        0x5005_713c,
        0xedb8_8320,
        0xf00f_9344,
        0xd6d6_a3e8,
        0xcb61_b38c,
        0x9b64_c2b0,
        0x86d3_d2d4,
        0xa00a_e278,
        0xbdbd_f21c,
    ];
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ b as u32) & 0xf) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (b as u32 >> 4)) & 0xf) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (Dataset, DatasetConfig) {
        let cfg = DatasetConfig::small(30, 77);
        (Dataset::build(&cfg).unwrap(), cfg)
    }

    #[test]
    fn round_trip_preserves_everything_queryable() {
        let (ds, cfg) = dataset();
        let bytes = save(&ds, &cfg.tags, cfg.tag_seed);
        let back = load(&bytes).unwrap();
        assert_eq!(ds.name, back.name);
        assert_eq!(ds.network, back.network);
        assert_eq!(ds.store.len(), back.store.len());
        for (a, b) in ds.store.iter().zip(back.store.iter()) {
            assert_eq!(a.1, b.1);
        }
        assert_eq!(ds.vocab.len(), back.vocab.len());
        for (id, w) in ds.vocab.iter() {
            assert_eq!(back.vocab.word(id), Some(w));
        }
        // rebuilt indexes answer identically
        for v in ds.network.node_ids() {
            assert_eq!(ds.vertex_index.values_at(v), back.vertex_index.values_at(v));
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let (ds, cfg) = dataset();
        let bin = save(&ds, &cfg.tags, cfg.tag_seed);
        let json = serde_json::to_vec(&ds.network).unwrap().len()
            + serde_json::to_vec(&ds.store).unwrap().len();
        assert!(
            bin.len() * 2 < json,
            "binary {} should be far below json {}",
            bin.len(),
            json
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(load(b"NOTADATASET"), Err(PersistError::BadMagic)));
        assert!(matches!(load(b""), Err(PersistError::Truncated(_))));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let (ds, cfg) = dataset();
        let bytes = save(&ds, &cfg.tags, cfg.tag_seed);
        // chop at a spread of prefixes: must never panic, always Err
        for cut in [8usize, 9, 20, 60, 200, bytes.len() / 2, bytes.len() - 1] {
            let r = load(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
        // the full payload still loads
        assert!(load(&bytes).is_ok());
    }

    #[test]
    fn corrupted_references_are_rejected() {
        let (ds, cfg) = dataset();
        let bytes = save(&ds, &cfg.tags, cfg.tag_seed).to_vec();
        // corrupt a trajectory's node id to u32::MAX: find the store section
        // heuristically by flipping bytes near the end and expecting either
        // Invalid or Truncated (never a panic, never silent acceptance of an
        // out-of-range vertex)
        let mut corrupted = bytes.clone();
        let n = corrupted.len();
        for i in (n - 200..n - 4).step_by(12) {
            corrupted[i] = 0xff;
            corrupted[i + 1] = 0xff;
            corrupted[i + 2] = 0xff;
            corrupted[i + 3] = 0xff;
        }
        if let Ok(back) = load(&corrupted) {
            // extraordinarily unlikely, but if it parses it must be valid
            for (_, t) in back.store.iter() {
                for v in t.nodes() {
                    assert!(back.network.contains_node(v));
                }
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let (ds, cfg) = dataset();
        let dir = std::env::temp_dir().join("uots_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.uotsds");
        save_file(&ds, &cfg, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(ds.network, back.network);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_file("/nonexistent/uots.ds"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (ds, cfg) = dataset();
        let mut bytes = save(&ds, &cfg.tags, cfg.tag_seed).to_vec();
        assert!(load(&bytes).is_ok());
        for suffix in [&b"\x00"[..], b"junk", &[0xff; 64]] {
            let mut extended = bytes.clone();
            extended.extend_from_slice(suffix);
            assert!(
                matches!(load(&extended), Err(PersistError::Invalid(_))),
                "{} appended bytes must be rejected",
                suffix.len()
            );
        }
        // a second full payload concatenated is also trailing garbage
        let dup = bytes.clone();
        bytes.extend_from_slice(&dup);
        assert!(matches!(load(&bytes), Err(PersistError::Invalid(_))));
    }

    #[test]
    fn legacy_v1_payload_still_loads_with_interning_on_load() {
        let (ds, cfg) = dataset();
        let v1 = save_legacy_v1(&ds, &cfg.tags, cfg.tag_seed);
        assert_eq!(&v1[..8], MAGIC_V1);
        let back = load(&v1).unwrap();
        assert_eq!(ds.vocab.len(), back.vocab.len());
        for (id, w) in ds.vocab.iter() {
            assert_eq!(back.vocab.word(id), Some(w), "interned ids must agree");
        }
        for (a, b) in ds.store.iter().zip(back.store.iter()) {
            assert_eq!(a.1, b.1);
        }
        // and the two formats decode to identical datasets
        let v2_back = load(&save(&ds, &cfg.tags, cfg.tag_seed)).unwrap();
        assert_eq!(v2_back.store.len(), back.store.len());
        for (a, b) in v2_back.store.iter().zip(back.store.iter()) {
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn vocab_table_section_is_versioned_and_validated() {
        let (ds, cfg) = dataset();
        let bytes = save(&ds, &cfg.tags, cfg.tag_seed).to_vec();
        assert_eq!(&bytes[..8], MAGIC);
        // locate the vtab header: it follows the vocab section, whose end
        // we can find by re-serializing the prefix up to it
        let mut prefix = BytesMut::new();
        prefix.put_slice(MAGIC);
        prefix.put_u32_le(ds.name.len() as u32);
        prefix.put_slice(ds.name.as_bytes());
        prefix.put_u64_le(cfg.tag_seed);
        prefix.put_u32_le(cfg.tags.vocab_size as u32);
        prefix.put_u32_le(cfg.tags.num_categories as u32);
        prefix.put_u32_le(cfg.tags.keywords_per_category as u32);
        prefix.put_f64_le(cfg.tags.category_skew);
        prefix.put_f64_le(cfg.tags.keyword_skew);
        prefix.put_f64_le(cfg.tags.background_prob);
        write_network(&mut prefix, &ds.network);
        write_vocab(&mut prefix, &ds.vocab);
        let vtab_at = prefix.len();
        assert_eq!(
            u16::from_le_bytes([bytes[vtab_at], bytes[vtab_at + 1]]),
            VOCAB_TABLE_VERSION
        );
        // a permuted table entry is rejected (the interning it pins no
        // longer matches the loaded vocabulary)
        let mut permuted = bytes.clone();
        permuted[vtab_at + 10] ^= 0x01; // first entry's id
        assert!(matches!(load(&permuted), Err(PersistError::Invalid(_))));
        // an unknown (future) version is skipped over its byte length
        let mut future = bytes.clone();
        future[vtab_at] = 0xfe;
        future[vtab_at + 1] = 0xff;
        assert!(load(&future).is_ok(), "length framing must allow skipping");
        // truncation inside the table is detected
        assert!(matches!(
            load(&bytes[..vtab_at + 3]),
            Err(PersistError::Truncated(_))
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // the canonical IEEE 802.3 check value
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn checkpoint() -> Checkpoint {
        let (ds, _) = dataset();
        let mut live = LiveSet::all_live(ds.store.len());
        live.retire(uots_trajectory::TrajectoryId(1));
        Checkpoint {
            network: ds.network,
            vocab: ds.vocab,
            store: ds.store,
            live,
            epoch: 7,
            lsn: 42,
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let ck = checkpoint();
        let bytes = save_checkpoint(&ck);
        let back = load_checkpoint(&bytes).unwrap();
        assert_eq!(back.epoch, 7);
        assert_eq!(back.lsn, 42);
        assert_eq!(ck.network, back.network);
        assert_eq!(ck.live, back.live);
        assert_eq!(ck.store.len(), back.store.len());
        for (a, b) in ck.store.iter().zip(back.store.iter()) {
            assert_eq!(a.1, b.1);
        }
        assert_eq!(ck.vocab.len(), back.vocab.len());
    }

    #[test]
    fn checkpoint_detects_every_corruption_mode() {
        let ck = checkpoint();
        let bytes = save_checkpoint(&ck).to_vec();
        // truncation at a spread of prefixes
        for cut in [0usize, 4, 11, 24, 100, bytes.len() / 2, bytes.len() - 1] {
            assert!(load_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // any single bit flip breaks the CRC
        for pos in [8usize, 20, bytes.len() / 3, bytes.len() - 5] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x10;
            assert!(load_checkpoint(&mutated).is_err(), "flip at {pos}");
        }
        // trailing garbage lands after the CRC trailer, so the CRC no
        // longer covers the tail: still rejected
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"xx");
        assert!(load_checkpoint(&extended).is_err());
        // a dataset payload is not a checkpoint
        let (ds, cfg) = dataset();
        let ds_bytes = save(&ds, &cfg.tags, cfg.tag_seed);
        assert!(matches!(
            load_checkpoint(&ds_bytes),
            Err(PersistError::BadMagic)
        ));
        // the pristine payload still loads
        assert!(load_checkpoint(&bytes).is_ok());
    }

    #[test]
    fn checkpoint_file_round_trip_is_atomic() {
        let ck = checkpoint();
        let dir = std::env::temp_dir().join("uots_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.uotsck");
        save_checkpoint_file(&ck, &path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        let back = load_checkpoint_file(&path).unwrap();
        assert_eq!(back.lsn, ck.lsn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_save_is_atomic_under_write_faults() {
        use uots_storage::fault::{Fault, FaultFs, OpKind, ScriptedFault};
        let (ds, cfg) = dataset();
        let dir = std::env::temp_dir().join("uots_persist_fault_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.uots");
        // a good save first, so the fault case has something to protect
        save_file(&ds, &cfg, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // now a save whose tmp-file write tears mid-way: the target file
        // must be untouched (the torn bytes only ever exist in the .tmp)
        let fs = FaultFs::scripted(
            77,
            vec![ScriptedFault {
                op: OpKind::Write,
                nth: 0,
                fault: Fault::ShortWrite,
            }],
        );
        assert!(matches!(
            save_file_with(&*fs, &ds, &cfg, &path),
            Err(PersistError::Io(_))
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            pristine,
            "a failed save must never damage the existing dataset"
        );
        // and a save whose directory fsync fails must report the error:
        // the rename's durability is unknown, pretending success would be
        // the swallowed-fsync bug
        let fs = FaultFs::scripted(
            78,
            vec![ScriptedFault {
                op: OpKind::SyncDir,
                nth: 0,
                fault: Fault::Permanent,
            }],
        );
        assert!(matches!(
            save_file_with(&*fs, &ds, &cfg, &path),
            Err(PersistError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_save_propagates_dir_fsync_failure() {
        use uots_storage::fault::{Fault, FaultFs, OpKind, ScriptedFault};
        let ck = checkpoint();
        let dir = std::env::temp_dir().join("uots_ckpt_fault_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.uotsck");
        let fs = FaultFs::scripted(
            79,
            vec![ScriptedFault {
                op: OpKind::SyncDir,
                nth: 0,
                fault: Fault::Permanent,
            }],
        );
        assert!(
            matches!(
                save_checkpoint_file_with(&*fs, &ck, &path),
                Err(PersistError::Io(_))
            ),
            "directory-fsync failure decides rename durability; it must propagate"
        );
        // without faults the same backend path round-trips
        save_checkpoint_file_with(&uots_storage::StdFs, &ck, &path).unwrap();
        let back = load_checkpoint_file_with(&uots_storage::StdFs, &path).unwrap();
        assert_eq!(back.lsn, ck.lsn);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
