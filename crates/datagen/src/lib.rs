//! # uots-datagen
//!
//! Reproducible dataset construction for the UOTS reproduction: bundles a
//! road network, a trajectory store, the vocabulary and all query-time
//! indexes into a [`Dataset`], with presets scaled after the paper family's
//! evaluation networks (Beijing ≈ 28k vertices, New York ≈ 95k vertices),
//! plus a [`workload`] generator producing UOTS query inputs.
//!
//! Everything is deterministic from the configuration's seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod persist;
pub mod workload;

use serde::{Deserialize, Serialize};
use uots_index::{GridIndex, KeywordInvertedIndex, VertexInvertedIndex};
use uots_network::generators::{grid_city, ring_radial, GridCityConfig, RingRadialConfig};
use uots_network::{NodeId, Point, RoadNetwork};
use uots_text::Vocabulary;
use uots_trajectory::{
    DatasetStats, TagModelConfig, TagSampler, TrajectoryError, TrajectoryId, TrajectoryStore,
    TripGenerator, TripGeneratorConfig,
};

/// Which synthetic network family to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetworkPreset {
    /// Jittered-lattice city, see
    /// [`uots_network::generators::grid_city`].
    GridCity(GridCityConfig),
    /// Ring-radial city, see
    /// [`uots_network::generators::ring_radial`].
    RingRadial(RingRadialConfig),
}

/// Full dataset configuration: network + trips + tags.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Human-readable dataset name (used in experiment output).
    pub name: String,
    /// Network generator choice.
    pub network: NetworkPreset,
    /// Trip generator settings.
    pub trips: TripGeneratorConfig,
    /// Tag model settings.
    pub tags: TagModelConfig,
    /// Seed for the tag model (the trip generator has its own seed).
    pub tag_seed: u64,
}

impl DatasetConfig {
    /// A Beijing-like configuration: ≈ 28k vertices (the paper's BRN has
    /// 28,342), trips averaging tens of samples. `num_trips` scales the
    /// trajectory cardinality — the paper family used 50k–200k on BRN.
    pub fn brn_like(num_trips: usize) -> Self {
        let mut grid = GridCityConfig::new(168, 168); // 28,224 vertices
        grid.seed = 0xbe11;
        DatasetConfig {
            name: format!("BRN-like ({num_trips} trips)"),
            network: NetworkPreset::GridCity(grid),
            trips: TripGeneratorConfig {
                num_trips,
                hotspots: 24,
                min_trip_km: 4.0,
                sample_stride: 3,
                ..Default::default()
            },
            tags: TagModelConfig::default(),
            tag_seed: 0xbe12,
        }
    }

    /// A New-York-like configuration: denser network (the paper's NRN has
    /// 95,581 vertices; this preset generates ≈ 95k).
    pub fn nrn_like(num_trips: usize) -> Self {
        let mut grid = GridCityConfig::new(310, 308); // 95,480 vertices
        grid.seed = 0x4e11;
        grid.diagonal_prob = 0.08;
        DatasetConfig {
            name: format!("NRN-like ({num_trips} trips)"),
            network: NetworkPreset::GridCity(grid),
            trips: TripGeneratorConfig {
                num_trips,
                hotspots: 40,
                min_trip_km: 5.0,
                sample_stride: 3,
                ..Default::default()
            },
            tags: TagModelConfig {
                vocab_size: 800,
                num_categories: 20,
                ..Default::default()
            },
            tag_seed: 0x4e12,
        }
    }

    /// A small dataset for unit/integration tests and quick examples:
    /// a 30×30 city with the requested number of trips.
    pub fn small(num_trips: usize, seed: u64) -> Self {
        let mut grid = GridCityConfig::new(30, 30);
        grid.seed = seed;
        DatasetConfig {
            name: format!("small ({num_trips} trips, seed {seed})"),
            network: NetworkPreset::GridCity(grid),
            trips: TripGeneratorConfig {
                num_trips,
                hotspots: 5,
                min_trip_km: 1.5,
                sample_stride: 2,
                ..Default::default()
            }
            .with_seed(seed ^ 0x1111),
            tags: TagModelConfig {
                vocab_size: 60,
                num_categories: 6,
                keywords_per_category: 15,
                ..Default::default()
            },
            tag_seed: seed ^ 0x2222,
        }
    }

    /// Overrides every generator seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.trips.seed = seed ^ 0xaaaa;
        self.tag_seed = seed ^ 0xbbbb;
        match &mut self.network {
            NetworkPreset::GridCity(c) => c.seed = seed ^ 0xcccc,
            NetworkPreset::RingRadial(c) => c.seed = seed ^ 0xcccc,
        }
        self
    }
}

/// A fully built dataset: network, trajectories, vocabulary and all
/// query-time indexes.
pub struct Dataset {
    /// Dataset name (from the configuration).
    pub name: String,
    /// The road network.
    pub network: RoadNetwork,
    /// The trajectories.
    pub store: TrajectoryStore,
    /// The tag vocabulary.
    pub vocab: Vocabulary,
    /// The tag sampler used to generate (and to sample query) keywords.
    pub tags: TagSampler,
    /// vertex → trajectories index (probed by the expansion search).
    pub vertex_index: VertexInvertedIndex<TrajectoryId>,
    /// keyword → trajectories index (textual baseline).
    pub keyword_index: KeywordInvertedIndex<TrajectoryId>,
    /// Spatial grid over network vertices (query-point snapping).
    pub grid: GridIndex,
}

impl Dataset {
    /// Builds the dataset described by `cfg`. This generates the network,
    /// all trips, and every index; cost is dominated by routing one A*
    /// query per trip.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn build(cfg: &DatasetConfig) -> Result<Self, BuildError> {
        let network = match &cfg.network {
            NetworkPreset::GridCity(c) => grid_city(c).map_err(BuildError::Network)?,
            NetworkPreset::RingRadial(c) => ring_radial(c).map_err(BuildError::Network)?,
        };
        let mut tag_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(cfg.tag_seed);
        let (tags, vocab) = TagSampler::synthetic(&cfg.tags, &mut tag_rng);
        let store = {
            let mut generator =
                TripGenerator::new(&network, cfg.trips.clone()).map_err(BuildError::Trajectory)?;
            generator.generate(&tags)
        };
        let vertex_index = store.build_vertex_index(network.num_nodes());
        let keyword_index = store.build_keyword_index(vocab.len());
        let grid = GridIndex::build(network.points(), 8);
        Ok(Dataset {
            name: cfg.name.clone(),
            network,
            store,
            vocab,
            tags,
            vertex_index,
            keyword_index,
            grid,
        })
    }

    /// Snaps an arbitrary point to its nearest network vertex.
    pub fn snap(&self, p: &Point) -> NodeId {
        NodeId(self.grid.nearest(p).0 as u32)
    }

    /// Dataset statistics (table T1 of the experiment suite).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.store)
    }
}

/// Errors from [`Dataset::build`].
#[derive(Debug)]
pub enum BuildError {
    /// Network generation failed.
    Network(uots_network::NetworkError),
    /// Trip generation failed.
    Trajectory(TrajectoryError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Network(e) => write!(f, "network generation failed: {e}"),
            BuildError::Trajectory(e) => write!(f, "trip generation failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_builds_consistently() {
        let cfg = DatasetConfig::small(40, 7);
        let ds = Dataset::build(&cfg).unwrap();
        assert_eq!(ds.store.len(), 40);
        assert_eq!(ds.network.num_nodes(), 900);
        assert!(ds.network.is_connected());
        assert_eq!(ds.vertex_index.num_vertices(), 900);
        assert_eq!(ds.keyword_index.vocab_len(), ds.vocab.len());
        // every trajectory's vertices and keywords are registered
        for (id, t) in ds.store.iter() {
            for v in t.nodes() {
                assert!(ds.vertex_index.values_at(v).contains(&id));
            }
            for k in t.keywords().iter() {
                assert!(ds.keyword_index.values_for(k).contains(&id));
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = DatasetConfig::small(15, 3);
        let a = Dataset::build(&cfg).unwrap();
        let b = Dataset::build(&cfg).unwrap();
        assert_eq!(a.network, b.network);
        for (x, y) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn with_seed_changes_everything() {
        let a = Dataset::build(&DatasetConfig::small(10, 1).with_seed(100)).unwrap();
        let b = Dataset::build(&DatasetConfig::small(10, 1).with_seed(200)).unwrap();
        assert_ne!(a.network, b.network);
    }

    #[test]
    fn snap_returns_nearest_vertex() {
        let ds = Dataset::build(&DatasetConfig::small(5, 2)).unwrap();
        for v in [NodeId(0), NodeId(450), NodeId(899)] {
            let p = ds.network.point(v);
            assert_eq!(ds.snap(&p), v);
        }
    }

    #[test]
    fn stats_reflect_store() {
        let ds = Dataset::build(&DatasetConfig::small(25, 9)).unwrap();
        let st = ds.stats();
        assert_eq!(st.count, 25);
        assert!(st.avg_len >= 2.0);
        assert!(st.distinct_keywords > 0);
    }

    #[test]
    fn brn_and_nrn_presets_match_paper_scale() {
        // don't build (expensive); just check the configured shapes
        let cfg = DatasetConfig::brn_like(1000);
        match &cfg.network {
            NetworkPreset::GridCity(g) => {
                let n = g.nx * g.ny;
                assert!((27_000..30_000).contains(&n), "vertices {n}");
            }
            _ => panic!("expected grid city"),
        }
        let cfg = DatasetConfig::nrn_like(1000);
        match &cfg.network {
            NetworkPreset::GridCity(g) => {
                let n = g.nx * g.ny;
                assert!((93_000..98_000).contains(&n), "vertices {n}");
            }
            _ => panic!("expected grid city"),
        }
    }
}
