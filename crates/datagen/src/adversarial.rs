//! Adversarial dataset generators for robustness testing.
//!
//! The standard presets produce well-behaved cities; the anytime execution
//! layer must also survive pathological inputs. Two stressors:
//!
//! * [`hub_spike`] — every trajectory is routed through one shared hub
//!   vertex, so the vertex inverted index fans out to the *entire* store
//!   the moment any expansion reaches the hub. Worst case for
//!   candidate-generation budgets (`max_visited`).
//! * [`split_city`] — the network is a set of mutually unreachable
//!   islands. Expansions from query locations can never leave their
//!   island, so most trajectories keep spatial similarity exactly zero;
//!   exercises the exhaustion/sweep paths and join subset semantics.
//!
//! Both are deterministic from their seed and return a fully indexed
//! [`Dataset`].

use crate::{BuildError, Dataset, DatasetConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uots_index::GridIndex;
use uots_network::{NetworkBuilder, NodeId, Point};
use uots_trajectory::{Sample, TagModelConfig, TagSampler, Trajectory, TrajectoryStore};

/// Builds a small city where **every** trajectory passes through one hub
/// vertex (the grid centre), prepended as each trip's first sample.
///
/// Probing the vertex index at the hub returns the whole store, which
/// makes any search touching it visit `num_trips` candidates at once —
/// the spike a `max_visited` budget exists to absorb.
///
/// # Errors
///
/// Propagates [`Dataset::build`] errors from the underlying preset.
pub fn hub_spike(num_trips: usize, seed: u64) -> Result<Dataset, BuildError> {
    let mut cfg = DatasetConfig::small(num_trips, seed);
    cfg.name = format!("hub-spike ({num_trips} trips, seed {seed})");
    let base = Dataset::build(&cfg)?;
    let hub = NodeId((base.network.num_nodes() / 2) as u32);

    let mut store = TrajectoryStore::new();
    for (_, t) in base.store.iter() {
        let first = t.samples()[0];
        let mut samples = Vec::with_capacity(t.len() + 1);
        samples.push(Sample {
            node: hub,
            time: (first.time - 60.0).max(0.0),
        });
        samples.extend_from_slice(t.samples());
        store.push(
            Trajectory::new(samples, t.keywords().clone())
                .expect("prepending an earlier sample keeps the trajectory valid"),
        );
    }

    let vertex_index = store.build_vertex_index(base.network.num_nodes());
    let keyword_index = store.build_keyword_index(base.vocab.len());
    Ok(Dataset {
        name: cfg.name,
        network: base.network,
        store,
        vocab: base.vocab,
        tags: base.tags,
        vertex_index,
        keyword_index,
        grid: base.grid,
    })
}

/// Lattice side length of each [`split_city`] island.
const ISLAND_SIDE: usize = 8;
/// Vertex spacing within an island, kilometres.
const ISLAND_SPACING_KM: f64 = 0.4;
/// Gap between islands, kilometres — far beyond any similarity decay.
const ISLAND_GAP_KM: f64 = 25.0;

/// Builds a city of `components` mutually disconnected lattice islands
/// with `trips_per_component` random-walk trajectories confined to each.
///
/// Network distances across islands are infinite: a query placed on one
/// island sees spatial similarity exactly `0` for every other island's
/// trajectories, no matter how long the search runs.
///
/// # Errors
///
/// [`BuildError::Network`] if the network is degenerate (`components` or
/// `trips_per_component` of zero still build an empty-but-valid dataset
/// only when at least one vertex exists, so `components == 0` errors).
pub fn split_city(
    components: usize,
    trips_per_component: usize,
    seed: u64,
) -> Result<Dataset, BuildError> {
    let n = ISLAND_SIDE;
    let mut b = NetworkBuilder::new();
    for c in 0..components {
        let x0 = c as f64 * (n as f64 * ISLAND_SPACING_KM + ISLAND_GAP_KM);
        let base = b.num_nodes() as u32;
        for j in 0..n {
            for i in 0..n {
                b.add_node(Point::new(
                    x0 + i as f64 * ISLAND_SPACING_KM,
                    j as f64 * ISLAND_SPACING_KM,
                ));
            }
        }
        for j in 0..n {
            for i in 0..n {
                let v = base + (j * n + i) as u32;
                if i + 1 < n {
                    b.add_edge(NodeId(v), NodeId(v + 1), None)
                        .map_err(BuildError::Network)?;
                }
                if j + 1 < n {
                    b.add_edge(NodeId(v), NodeId(v + n as u32), None)
                        .map_err(BuildError::Network)?;
                }
            }
        }
    }
    let network = b.build().map_err(BuildError::Network)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let (tags, vocab) = TagSampler::synthetic(
        &TagModelConfig {
            vocab_size: 40,
            num_categories: 4,
            keywords_per_category: 12,
            ..Default::default()
        },
        &mut rng,
    );

    let island_nodes = n * n;
    let mut store = TrajectoryStore::new();
    for c in 0..components {
        let base = (c * island_nodes) as u32;
        for _ in 0..trips_per_component {
            let len = rng.gen_range(4..10usize);
            let mut v = NodeId(base + rng.gen_range(0..island_nodes) as u32);
            let mut time = rng.gen_range(0.0..70_000.0);
            let mut samples = Vec::with_capacity(len);
            for _ in 0..len {
                samples.push(Sample { node: v, time });
                let nbrs: Vec<NodeId> = network.neighbors(v).map(|(u, _)| u).collect();
                v = nbrs[rng.gen_range(0..nbrs.len())];
                time += rng.gen_range(20.0..90.0);
            }
            let category = tags.sample_category(&mut rng);
            let kw = tags.sample_tags(category, 3, &mut rng);
            store.push(Trajectory::new(samples, kw).expect("walk times increase"));
        }
    }

    let vertex_index = store.build_vertex_index(network.num_nodes());
    let keyword_index = store.build_keyword_index(vocab.len());
    let grid = GridIndex::build(network.points(), 8);
    Ok(Dataset {
        name: format!("split-city ({components}×{trips_per_component} trips, seed {seed})"),
        network,
        store,
        vocab,
        tags,
        vertex_index,
        keyword_index,
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_spike_routes_everything_through_the_hub() {
        let ds = hub_spike(25, 5).unwrap();
        assert_eq!(ds.store.len(), 25);
        let hub = NodeId((ds.network.num_nodes() / 2) as u32);
        // the hub's inverted-index posting list covers the whole store
        assert_eq!(ds.vertex_index.values_at(hub).len(), 25);
        for (_, t) in ds.store.iter() {
            assert_eq!(t.samples()[0].node, hub);
        }
    }

    #[test]
    fn hub_spike_is_deterministic() {
        let a = hub_spike(10, 3).unwrap();
        let b = hub_spike(10, 3).unwrap();
        for (x, y) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn split_city_is_disconnected_with_confined_walks() {
        let ds = split_city(3, 8, 11).unwrap();
        assert_eq!(ds.network.num_nodes(), 3 * ISLAND_SIDE * ISLAND_SIDE);
        assert!(!ds.network.is_connected());
        assert_eq!(ds.store.len(), 24);
        let island = |v: NodeId| v.index() / (ISLAND_SIDE * ISLAND_SIDE);
        for (_, t) in ds.store.iter() {
            let home = island(t.samples()[0].node);
            for s in t.samples() {
                assert_eq!(island(s.node), home, "walks must not cross islands");
            }
        }
    }

    #[test]
    fn split_city_single_island_is_connected() {
        let ds = split_city(1, 5, 13).unwrap();
        assert!(ds.network.is_connected());
    }

    #[test]
    fn split_city_rejects_zero_components() {
        assert!(split_city(0, 5, 1).is_err());
    }
}
