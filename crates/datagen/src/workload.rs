//! Query workload generation.
//!
//! A UOTS query input is a set of intended places plus a set of preference
//! keywords. Realistic workloads have two properties this generator
//! reproduces:
//!
//! * **spatial locality** — a traveler's intended places lie within one trip
//!   radius of each other, not uniformly across the city;
//! * **textual coherence** — preference keywords come from one activity
//!   profile (category), like real users' interests.
//!
//! The output is a plain [`QuerySpec`]; `uots-core` turns it into a
//! `UotsQuery` (the crates are deliberately decoupled in that direction).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uots_network::{NodeId, Point};
use uots_text::KeywordSet;

/// The raw input of one UOTS query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Intended places, snapped to network vertices, deduplicated.
    pub locations: Vec<NodeId>,
    /// Preference keywords.
    pub keywords: KeywordSet,
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Intended places per query (`m` in the paper's notation).
    pub locations_per_query: usize,
    /// Preference keywords per query.
    pub keywords_per_query: usize,
    /// Radius (km) within which a query's places cluster.
    pub locality_km: f64,
    /// Probability that the query anchor is a vertex some trajectory
    /// actually visits (instead of a uniformly random vertex); keeps most
    /// queries in populated areas.
    pub data_anchored_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 32,
            locations_per_query: 4,
            keywords_per_query: 3,
            locality_km: 4.0,
            data_anchored_prob: 0.8,
            seed: 0x0ead_beef,
        }
    }
}

/// Generates a deterministic workload over `ds`.
///
/// # Panics
///
/// Panics when `locations_per_query == 0` or the dataset store is empty
/// while `data_anchored_prob > 0`.
pub fn generate(ds: &Dataset, cfg: &WorkloadConfig) -> Vec<QuerySpec> {
    assert!(
        cfg.locations_per_query > 0,
        "queries need at least one place"
    );
    assert!((0.0..=1.0).contains(&cfg.data_anchored_prob));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.num_queries)
        .map(|_| generate_one(ds, cfg, &mut rng))
        .collect()
}

fn generate_one(ds: &Dataset, cfg: &WorkloadConfig, rng: &mut StdRng) -> QuerySpec {
    let anchor = if rng.gen::<f64>() < cfg.data_anchored_prob {
        assert!(
            !ds.store.is_empty(),
            "data-anchored queries need a non-empty store"
        );
        // a vertex some trajectory actually visits
        let tid = uots_trajectory::TrajectoryId(rng.gen_range(0..ds.store.len()) as u32);
        let t = ds.store.get(tid);
        let s = t.samples()[rng.gen_range(0..t.len())];
        ds.network.point(s.node)
    } else {
        let v = NodeId(rng.gen_range(0..ds.network.num_nodes()) as u32);
        ds.network.point(v)
    };

    // sample distinct places within the locality disc around the anchor
    let mut locations: Vec<NodeId> = Vec::with_capacity(cfg.locations_per_query);
    let mut attempts = 0;
    while locations.len() < cfg.locations_per_query && attempts < 200 {
        attempts += 1;
        let ang = rng.gen::<f64>() * std::f64::consts::TAU;
        let r = rng.gen::<f64>().sqrt() * cfg.locality_km; // uniform in disc
        let p = Point::new(anchor.x + r * ang.cos(), anchor.y + r * ang.sin());
        let v = ds.snap(&p);
        if !locations.contains(&v) {
            locations.push(v);
        }
    }
    // tiny networks may not have enough distinct vertices in the disc; fall
    // back to uniform vertices to honour the requested cardinality
    while locations.len() < cfg.locations_per_query {
        let v = NodeId(rng.gen_range(0..ds.network.num_nodes()) as u32);
        if !locations.contains(&v) {
            locations.push(v);
        }
    }

    let category = ds.tags.sample_category(rng);
    let keywords = if cfg.keywords_per_query == 0 {
        KeywordSet::empty()
    } else {
        ds.tags.sample_tags(category, cfg.keywords_per_query, rng)
    };

    QuerySpec {
        locations,
        keywords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::build(&DatasetConfig::small(30, 5)).unwrap()
    }

    #[test]
    fn generates_requested_shape() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            num_queries: 10,
            locations_per_query: 5,
            keywords_per_query: 3,
            ..Default::default()
        };
        let qs = generate(&ds, &cfg);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert_eq!(q.locations.len(), 5);
            // locations are distinct
            let mut sorted = q.locations.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
            assert!(!q.keywords.is_empty());
            assert!(q.keywords.len() <= 3);
            for v in &q.locations {
                assert!(ds.network.contains_node(*v));
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let ds = dataset();
        let cfg = WorkloadConfig::default();
        assert_eq!(generate(&ds, &cfg), generate(&ds, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let ds = dataset();
        let mut cfg = WorkloadConfig::default();
        let a = generate(&ds, &cfg);
        cfg.seed = 1;
        let b = generate(&ds, &cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn locality_constrains_spread() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            num_queries: 20,
            locations_per_query: 4,
            locality_km: 1.0,
            data_anchored_prob: 1.0,
            ..Default::default()
        };
        for q in generate(&ds, &cfg) {
            // pairwise Euclidean spread bounded by the disc diameter plus
            // snapping slack (street spacing is 0.25 km in the small preset)
            for a in &q.locations {
                for b in &q.locations {
                    let d = ds.network.point(*a).distance(&ds.network.point(*b));
                    assert!(d <= 2.0 * 1.0 + 1.0, "spread {d}");
                }
            }
        }
    }

    #[test]
    fn zero_keywords_allowed() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            keywords_per_query: 0,
            ..Default::default()
        };
        for q in generate(&ds, &cfg) {
            assert!(q.keywords.is_empty());
        }
    }
}
