//! Deterministic storage-fault injection.
//!
//! [`FaultFs`] wraps the real filesystem and injects failures according
//! to a seeded schedule: fail the Nth operation of a kind (scripted
//! mode), or fail each operation with configured probabilities (random
//! mode, the chaos harness's driver). Faults model what real disks do:
//!
//! * **transient errors** (`EINTR`-like) — nothing happened, a retry
//!   succeeds;
//! * **ENOSPC** — a *prefix* of the buffer hits the file, then the write
//!   fails;
//! * **short/torn writes** — same partial-prefix semantics with a
//!   permanent error;
//! * **fsync failure with page loss** (the "fsyncgate" semantics) — the
//!   sync fails *and the unsynced suffix is dropped*, exactly as a kernel
//!   that discards dirty pages after an I/O error; a later sync will
//!   succeed without the data ever having reached the disk.
//!
//! Beyond injecting faults, `FaultFs` tracks the **durable length** of
//! every file it created: bytes at or below it survived a successful
//! sync, bytes above it live in the page cache. [`FaultFs::crash`] uses
//! that to materialize a worst-case crash image — each file keeps its
//! durable prefix plus a seeded random amount of the unsynced tail — so
//! a test can assert that recovery never depends on bytes that were never
//! acknowledged as durable.
//!
//! The [`FaultConfig::lie_on_fsync`] switch makes the injector *swallow*
//! fsync failures (report success while dropping the pages): a
//! deliberately broken backend the chaos harness uses to prove it can
//! catch an acked-write-lost bug.

use crate::{SplitMix64, StorageBackend, StorageFile};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The operation categories a schedule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// File creation.
    Create,
    /// Whole-file read.
    Read,
    /// Directory listing.
    ReadDir,
    /// A `write_all` on an open file.
    Write,
    /// A `sync_data` / `sync_all` on an open file.
    Sync,
    /// Directory fsync.
    SyncDir,
    /// Rename.
    Rename,
    /// File removal.
    Remove,
    /// Truncate-and-sync.
    Truncate,
    /// Recursive directory creation.
    CreateDirAll,
}

const OP_KINDS: usize = 10;

impl OpKind {
    fn index(self) -> usize {
        match self {
            OpKind::Create => 0,
            OpKind::Read => 1,
            OpKind::ReadDir => 2,
            OpKind::Write => 3,
            OpKind::Sync => 4,
            OpKind::SyncDir => 5,
            OpKind::Rename => 6,
            OpKind::Remove => 7,
            OpKind::Truncate => 8,
            OpKind::CreateDirAll => 9,
        }
    }
}

/// What an injected failure does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `ErrorKind::Interrupted`; no side effect — a retry succeeds.
    Transient,
    /// A permanent I/O error; no side effect.
    Permanent,
    /// Writes: a seeded prefix of the buffer lands, then
    /// `ErrorKind::StorageFull`. Other ops: `StorageFull`, no side effect.
    Enospc,
    /// Writes only: a seeded prefix lands, then a permanent error —
    /// the torn-write case.
    ShortWrite,
    /// Syncs only: the sync fails **and the unsynced suffix of the file
    /// is dropped** (fsyncgate semantics).
    FsyncLoss,
}

/// One scripted fault: fail the `nth` (0-based) operation of kind `op`.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedFault {
    /// Operation category to match.
    pub op: OpKind,
    /// 0-based index among operations of that category.
    pub nth: u64,
    /// The failure to inject.
    pub fault: Fault,
}

/// Random-mode probabilities. All default to 0 (no faults).
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for every random decision (which ops fail, partial-write
    /// lengths, crash-image cuts).
    pub seed: u64,
    /// Probability a `Write` fails (variant drawn among
    /// transient / ENOSPC / short write / permanent).
    pub p_write: f64,
    /// Probability a `Sync` fails (variant drawn among
    /// fsync-loss / transient / permanent).
    pub p_sync: f64,
    /// Probability a metadata op (create, rename, remove, truncate,
    /// read-dir, sync-dir, mkdir) fails (transient or permanent).
    pub p_meta: f64,
    /// **Broken-backend mode**: fsync-loss faults drop the pages but
    /// report success. Exists so the chaos harness can prove it detects
    /// an acked-write-lost bug; never enable outside that self-test.
    pub lie_on_fsync: bool,
}

impl FaultConfig {
    /// A config with the given seed and no faults.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_write: 0.0,
            p_sync: 0.0,
            p_meta: 0.0,
            lie_on_fsync: false,
        }
    }
}

struct State {
    counts: [u64; OP_KINDS],
    script: Vec<(ScriptedFault, bool)>, // (fault, consumed)
    config: FaultConfig,
    rng: SplitMix64,
    /// durable length per file created through this backend
    durable: HashMap<PathBuf, u64>,
    injected: u64,
    log: Vec<String>,
}

impl State {
    /// Counts the op and decides whether (and how) it fails.
    fn decide(&mut self, op: OpKind) -> Option<Fault> {
        let n = self.counts[op.index()];
        self.counts[op.index()] += 1;
        for (s, consumed) in &mut self.script {
            if !*consumed && s.op == op && s.nth == n {
                *consumed = true;
                self.injected += 1;
                self.log.push(format!("{op:?}#{n}: scripted {:?}", s.fault));
                return Some(s.fault);
            }
        }
        let p = match op {
            OpKind::Write => self.config.p_write,
            OpKind::Sync => self.config.p_sync,
            OpKind::Read => 0.0,
            _ => self.config.p_meta,
        };
        if p > 0.0 && self.rng.next_f64() < p {
            let draw = self.rng.next_f64();
            let fault = match op {
                OpKind::Write => {
                    if draw < 0.35 {
                        Fault::Transient
                    } else if draw < 0.60 {
                        Fault::Enospc
                    } else if draw < 0.85 {
                        Fault::ShortWrite
                    } else {
                        Fault::Permanent
                    }
                }
                OpKind::Sync => {
                    if draw < 0.60 {
                        Fault::FsyncLoss
                    } else if draw < 0.85 {
                        Fault::Transient
                    } else {
                        Fault::Permanent
                    }
                }
                _ => {
                    if draw < 0.70 {
                        Fault::Transient
                    } else {
                        Fault::Permanent
                    }
                }
            };
            self.injected += 1;
            self.log.push(format!("{op:?}#{n}: random {fault:?}"));
            Some(fault)
        } else {
            None
        }
    }
}

/// The fault-injecting backend. Writes go to the real filesystem; the
/// schedule decides which operations fail and how. See the module docs.
pub struct FaultFs {
    state: Arc<Mutex<State>>,
}

fn injected_err(fault: Fault) -> io::Error {
    match fault {
        Fault::Transient => io::Error::new(io::ErrorKind::Interrupted, "injected transient fault"),
        Fault::Permanent => io::Error::other("injected permanent fault"),
        Fault::Enospc => io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC"),
        Fault::ShortWrite => io::Error::other("injected short write"),
        Fault::FsyncLoss => io::Error::other("injected fsync failure (pages dropped)"),
    }
}

impl FaultFs {
    /// A backend driven purely by the random `config`.
    pub fn random(config: FaultConfig) -> Arc<Self> {
        Arc::new(FaultFs {
            state: Arc::new(Mutex::new(State {
                counts: [0; OP_KINDS],
                script: Vec::new(),
                rng: SplitMix64::new(config.seed),
                config,
                durable: HashMap::new(),
                injected: 0,
                log: Vec::new(),
            })),
        })
    }

    /// A backend that fails exactly the scripted operations and nothing
    /// else.
    pub fn scripted(seed: u64, faults: Vec<ScriptedFault>) -> Arc<Self> {
        let fs = Self::random(FaultConfig::quiet(seed));
        fs.state.lock().unwrap().script = faults.into_iter().map(|f| (f, false)).collect();
        fs
    }

    /// Total faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Human-readable record of every injected fault, in order.
    pub fn fault_log(&self) -> Vec<String> {
        self.state.lock().unwrap().log.clone()
    }

    /// The durable length tracked for `path` (bytes guaranteed on disk),
    /// if the file was created through this backend.
    pub fn durable_len(&self, path: impl AsRef<Path>) -> Option<u64> {
        self.state
            .lock()
            .unwrap()
            .durable
            .get(path.as_ref())
            .copied()
    }

    /// Materializes a crash image: every file created through this
    /// backend keeps its durable prefix plus a seeded random cut of the
    /// unsynced tail (the bytes the page cache may or may not have
    /// flushed). Returns `(path, durable_len, pre_crash_len, kept_len)`
    /// per file. After this, the directory contents are exactly what a
    /// post-power-loss mount could observe.
    pub fn crash(&self, seed: u64) -> io::Result<Vec<(PathBuf, u64, u64, u64)>> {
        let state = self.state.lock().unwrap();
        let mut rng = SplitMix64::new(seed ^ 0xc4a5_4c4a_5c4a_u64);
        let mut report = Vec::new();
        for (path, &durable) in &state.durable {
            let Ok(meta) = std::fs::metadata(path) else {
                continue; // removed or renamed outside tracking
            };
            let len = meta.len();
            if len > durable {
                let keep = durable + rng.below(len - durable + 1);
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(keep)?;
                f.sync_all()?;
                report.push((path.clone(), durable, len, keep));
            } else {
                report.push((path.clone(), durable, len, len));
            }
        }
        Ok(report)
    }
}

/// File handle under [`FaultFs`].
struct FaultFile {
    inner: std::fs::File,
    path: PathBuf,
    state: Arc<Mutex<State>>,
}

impl StorageFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let fault = self.state.lock().unwrap().decide(OpKind::Write);
        match fault {
            None => self.inner.write_all(buf),
            Some(f @ (Fault::Enospc | Fault::ShortWrite)) => {
                // a prefix lands before the failure — the torn-write case
                let keep = {
                    let mut s = self.state.lock().unwrap();
                    s.rng.below(buf.len() as u64) as usize
                };
                self.inner.write_all(&buf[..keep])?;
                Err(injected_err(f))
            }
            Some(f) => Err(injected_err(f)),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.sync_impl()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.sync_impl()
    }
}

impl FaultFile {
    fn sync_impl(&mut self) -> io::Result<()> {
        let fault = self.state.lock().unwrap().decide(OpKind::Sync);
        match fault {
            None => {
                self.inner.sync_all()?;
                let len = std::fs::metadata(&self.path)?.len();
                self.state
                    .lock()
                    .unwrap()
                    .durable
                    .insert(self.path.clone(), len);
                Ok(())
            }
            Some(Fault::FsyncLoss) => {
                // fsyncgate: the dirty pages are gone; the kernel clears
                // the error state, so future syncs of this file succeed
                // without the data ever having hit the disk
                let (durable, lie) = {
                    let s = self.state.lock().unwrap();
                    (
                        s.durable.get(&self.path).copied().unwrap_or(0),
                        s.config.lie_on_fsync,
                    )
                };
                let f = std::fs::OpenOptions::new().write(true).open(&self.path)?;
                f.set_len(durable)?;
                f.sync_all()?;
                if lie {
                    Ok(()) // the deliberately broken backend: ack the loss
                } else {
                    Err(injected_err(Fault::FsyncLoss))
                }
            }
            Some(f) => Err(injected_err(f)),
        }
    }
}

impl StorageBackend for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::CreateDirAll) {
            return Err(injected_err(f));
        }
        std::fs::create_dir_all(dir)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::Create) {
            return Err(injected_err(f));
        }
        let inner = std::fs::File::create(path)?;
        self.state
            .lock()
            .unwrap()
            .durable
            .insert(path.to_path_buf(), 0);
        Ok(Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::Read) {
            return Err(injected_err(f));
        }
        std::fs::read(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::ReadDir) {
            return Err(injected_err(f));
        }
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::Rename) {
            return Err(injected_err(f));
        }
        std::fs::rename(from, to)?;
        let mut s = self.state.lock().unwrap();
        if let Some(d) = s.durable.remove(from) {
            s.durable.insert(to.to_path_buf(), d);
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::Remove) {
            return Err(injected_err(f));
        }
        std::fs::remove_file(path)?;
        self.state.lock().unwrap().durable.remove(path);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::Truncate) {
            return Err(injected_err(f));
        }
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()?;
        // the cut is synced: everything at or below it is durable now
        self.state
            .lock()
            .unwrap()
            .durable
            .insert(path.to_path_buf(), len);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if let Some(f) = self.state.lock().unwrap().decide(OpKind::SyncDir) {
            return Err(injected_err(f));
        }
        crate::StdFs.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StdFs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uots_faultfs_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let dir = tmpdir("quiet");
        let fs = FaultFs::random(FaultConfig::quiet(1));
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"abc");
        assert_eq!(fs.injected_faults(), 0);
        assert_eq!(fs.durable_len(&path), Some(3));
    }

    #[test]
    fn scripted_nth_write_fails_with_partial_bytes() {
        let dir = tmpdir("scripted");
        let fs = FaultFs::scripted(
            9,
            vec![ScriptedFault {
                op: OpKind::Write,
                nth: 1,
                fault: Fault::Enospc,
            }],
        );
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"first").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // a prefix of the failed write may have landed, never the whole
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.starts_with(b"first"));
        assert!(on_disk.len() < b"first".len() + b"second".len());
        // the schedule triggers once; the next write succeeds
        f.write_all(b"third").unwrap();
        assert_eq!(fs.injected_faults(), 1);
    }

    #[test]
    fn fsync_loss_drops_unsynced_suffix_and_reports_failure() {
        let dir = tmpdir("fsyncloss");
        let fs = FaultFs::scripted(
            5,
            vec![ScriptedFault {
                op: OpKind::Sync,
                nth: 1,
                fault: Fault::FsyncLoss,
            }],
        );
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap(); // sync #0 succeeds
        f.write_all(b"volatile").unwrap();
        assert!(f.sync_data().is_err()); // sync #1 fails, pages dropped
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        assert_eq!(fs.durable_len(&path), Some(7));
        // fsyncgate: a later sync succeeds, but the data is gone for good
        f.sync_data().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
    }

    #[test]
    fn lying_backend_acks_the_loss() {
        let dir = tmpdir("liar");
        let mut config = FaultConfig::quiet(5);
        config.lie_on_fsync = true;
        let fs = FaultFs::random(config);
        fs.state.lock().unwrap().script = vec![(
            ScriptedFault {
                op: OpKind::Sync,
                nth: 0,
                fault: Fault::FsyncLoss,
            },
            false,
        )];
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"gone").unwrap();
        f.sync_data().unwrap(); // lies: reports success, drops the bytes
        assert_eq!(std::fs::read(&path).unwrap(), b"");
    }

    #[test]
    fn crash_keeps_durable_prefix_and_a_cut_of_the_tail() {
        let dir = tmpdir("crash");
        let fs = FaultFs::random(FaultConfig::quiet(3));
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"durable!").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"maybe-lost-tail").unwrap();
        drop(f);
        for seed in 0..20 {
            // crash is destructive; rewrite the tail each round
            std::fs::write(&path, b"durable!maybe-lost-tail").unwrap();
            let report = fs.crash(seed).unwrap();
            let (_, durable, pre, kept) = report
                .iter()
                .find(|(p, _, _, _)| p == &path)
                .expect("tracked");
            assert_eq!(*durable, 8);
            assert_eq!(*pre, 23);
            assert!((8..=23).contains(kept));
            assert_eq!(std::fs::metadata(&path).unwrap().len(), *kept);
            let on_disk = std::fs::read(&path).unwrap();
            assert!(on_disk.starts_with(b"durable!"), "durable prefix survives");
        }
    }

    #[test]
    fn rename_carries_durable_tracking() {
        let dir = tmpdir("rename");
        let fs = FaultFs::random(FaultConfig::quiet(4));
        let a = dir.join("a");
        let b = dir.join("b");
        let mut f = fs.create(&a).unwrap();
        f.write_all(b"xy").unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs.rename(&a, &b).unwrap();
        assert_eq!(fs.durable_len(&a), None);
        assert_eq!(fs.durable_len(&b), Some(2));
        StdFs.sync_dir(&dir).unwrap();
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, Vec<String>) {
            let dir = tmpdir(&format!("det-{seed}"));
            let fs = FaultFs::random(FaultConfig {
                seed,
                p_write: 0.4,
                p_sync: 0.4,
                p_meta: 0.2,
                lie_on_fsync: false,
            });
            let path = dir.join("f");
            if let Ok(mut f) = fs.create(&path) {
                for i in 0..20 {
                    let _ = f.write_all(format!("chunk{i}").as_bytes());
                    let _ = f.sync_data();
                }
            }
            let _ = fs.rename(&path, &dir.join("g"));
            (fs.injected_faults(), fs.fault_log())
        };
        let (n1, log1) = run(0xfeed);
        let (n2, log2) = run(0xfeed);
        assert_eq!(n1, n2);
        assert_eq!(log1, log2);
        assert!(n1 > 0, "40% fault rates over 40+ ops must fire");
        let (n3, _) = run(0xbeef);
        // different seed, different schedule (overwhelmingly likely)
        assert!(n3 > 0);
    }
}
