//! # uots-storage
//!
//! The storage seam under the durable ingest path. Every byte the engine
//! persists — WAL segments, checkpoints, datasets — crosses a
//! [`StorageBackend`], so the durable pipeline can be exercised against
//! *failing* storage, not just crashes:
//!
//! * [`StdFs`] — the zero-overhead production passthrough to `std::fs`;
//! * [`fault::FaultFs`] — a deterministic, seeded fault injector (fail
//!   the Nth op, short/torn writes, fsync failure with page loss, ENOSPC,
//!   transient-then-recover) that also tracks which bytes were actually
//!   made durable so a test can materialize a worst-case crash image;
//! * [`ErrorClass`] — the transient/permanent taxonomy retry policies
//!   dispatch on;
//! * [`RetryPolicy`] — bounded exponential backoff with deterministic
//!   jitter;
//! * [`write_atomic`] — the shared tmp + fsync + rename + dir-fsync
//!   pattern, with *every* error propagated (a swallowed directory fsync
//!   is precisely the bug that decides whether a rename survived power
//!   loss).
//!
//! ## The fsyncgate rule
//!
//! A failed `fsync` does **not** mean "the data is still in the page
//! cache, try again": POSIX allows the kernel to drop the dirty pages and
//! clear the error, so a later fsync can succeed while the data is gone.
//! Consumers of this crate must therefore never re-trust buffered pages
//! after a failed sync — the WAL writer seals the segment at the last
//! known-durable boundary and starts a fresh one. [`fault::FaultFs`]
//! simulates exactly these semantics (a failed sync drops the unsynced
//! suffix), which is what lets the chaos harness prove the rule is
//! honored end to end.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// An open file handle on a [`StorageBackend`]. Writers append
/// sequentially; durability is explicit via the sync calls.
pub trait StorageFile: Send {
    /// Writes the whole buffer (or fails; a failure may have written a
    /// prefix — the caller must treat the tail as suspect).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces file *data* to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Forces file data and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The file operations the durable path uses, abstracted so faults can be
/// injected under the WAL, checkpoint, and dataset writers.
///
/// Semantics mirror `std::fs`; [`truncate`](Self::truncate) additionally
/// syncs, because every caller that cuts a file is sealing a durable
/// boundary and must not leave the cut itself in the page cache.
pub trait StorageBackend: Send + Sync {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (truncating if present) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the entries of a directory (non-recursive, files only as
    /// stored — callers filter).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// `std::fs::rename`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// `std::fs::remove_file`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncates the file to `len` bytes **and syncs the cut**.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Fsyncs a directory, making renames/creates/removes in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The zero-cost production backend: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdFile(std::fs::File);

impl StorageFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl StorageBackend for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        std::fs::File::open(dir)?.sync_all()
    }
}

/// How a storage error should be handled by the write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying with backoff: interruptions, timeouts, a full disk
    /// that an operator (or a pruning pass) may clear.
    Transient,
    /// Retrying in place cannot help: media errors, permissions, a
    /// missing directory. At most one attempt on a *fresh* segment is
    /// justified (the failure may be local to one file), then the writer
    /// must degrade rather than guess.
    Permanent,
}

impl ErrorClass {
    /// Classifies an I/O error into the retry taxonomy.
    pub fn of(e: &io::Error) -> ErrorClass {
        use io::ErrorKind::*;
        match e.kind() {
            Interrupted | WouldBlock | TimedOut | ResourceBusy | ExecutableFileBusy
            | StorageFull => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Transient errors get the full attempt budget; permanent errors get
/// `permanent_attempts` (default 2: the original try plus one retry that —
/// in the WAL's case — lands on a freshly sealed segment, since a fault
/// can be local to one file). Backoff for attempt *n* is
/// `base · 2ⁿ` clamped to `max_backoff`, ±25 % deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts allowed for transient errors (≥ 1).
    pub transient_attempts: u32,
    /// Total attempts allowed for permanent errors (≥ 1).
    pub permanent_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Seed decorrelating jitter across writers; any value works.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            transient_attempts: 6,
            permanent_attempts: 2,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — for tests, where the *decisions*
    /// matter and wall-clock delay is pure waste.
    pub fn without_backoff() -> Self {
        RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Whether another attempt is allowed after `attempts` tries have
    /// already failed with an error of class `class`.
    pub fn allows_retry(&self, class: ErrorClass, attempts: u32) -> bool {
        match class {
            ErrorClass::Transient => attempts < self.transient_attempts,
            ErrorClass::Permanent => attempts < self.permanent_attempts,
        }
    }

    /// Backoff before retry number `attempt` (1-based), jittered ±25 %
    /// deterministically from the policy seed.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1))
            .min(self.max_backoff);
        // jitter in [-25 %, +25 %): scale by (3/4 + r/2) with r ∈ [0, 1)
        let r =
            (splitmix64(self.jitter_seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.75 + 0.5 * r)
    }
}

/// Writes `bytes` to `path` atomically through `backend`: a `.tmp`
/// sibling is written and fsynced, renamed over the target, and the
/// parent directory is fsynced so the rename itself is durable. Every
/// step's error is propagated — in particular the directory fsync, which
/// is the step that decides whether the rename survives power loss.
pub fn write_atomic(backend: &dyn StorageBackend, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = backend.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    backend.rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        backend.sync_dir(dir)?;
    }
    Ok(())
}

/// SplitMix64 — the tiny seeded generator behind fault schedules and
/// backoff jitter (the workspace vendors `rand`, but this crate stays
/// dependency-free so every layer can use it).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A tiny deterministic RNG stream over [`splitmix64`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uots_storage_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stdfs_round_trips() {
        let dir = tmpdir("stdfs");
        let fs = StdFs;
        let path = dir.join("a.bin");
        {
            let mut f = fs.create(&path).unwrap();
            f.write_all(b"hello ").unwrap();
            f.write_all(b"world").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(fs.read(&path).unwrap(), b"hello world");
        fs.truncate(&path, 5).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        let listed = fs.read_dir(&dir).unwrap();
        assert_eq!(listed, vec![path.clone()]);
        let renamed = dir.join("b.bin");
        fs.rename(&path, &renamed).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert_eq!(fs.read(&renamed).unwrap(), b"hello");
        fs.remove_file(&renamed).unwrap();
        assert!(fs.read(&renamed).is_err());
    }

    #[test]
    fn classification_matches_the_taxonomy() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::StorageFull,
        ] {
            assert_eq!(
                ErrorClass::of(&Error::new(kind, "x")),
                ErrorClass::Transient,
                "{kind:?}"
            );
        }
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::InvalidData,
            ErrorKind::Other,
            ErrorKind::ReadOnlyFilesystem,
        ] {
            assert_eq!(
                ErrorClass::of(&Error::new(kind, "x")),
                ErrorClass::Permanent,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn retry_policy_budgets_and_backoff() {
        let p = RetryPolicy::default();
        assert!(p.allows_retry(ErrorClass::Transient, 0));
        assert!(p.allows_retry(ErrorClass::Transient, 5));
        assert!(!p.allows_retry(ErrorClass::Transient, 6));
        assert!(p.allows_retry(ErrorClass::Permanent, 1));
        assert!(!p.allows_retry(ErrorClass::Permanent, 2));
        // exponential, clamped, jitter within ±25 %
        let mut prev = Duration::ZERO;
        for attempt in 1..=8 {
            let b = p.backoff(attempt);
            assert!(b <= p.max_backoff.mul_f64(1.25), "attempt {attempt}: {b:?}");
            if attempt <= 4 {
                assert!(b >= prev.mul_f64(0.5), "should grow roughly: {b:?}");
            }
            prev = b;
        }
        // deterministic
        assert_eq!(p.backoff(3), p.backoff(3));
        assert_eq!(RetryPolicy::without_backoff().backoff(5), Duration::ZERO);
    }

    #[test]
    fn write_atomic_leaves_no_tmp_and_loads_back() {
        let dir = tmpdir("atomic");
        let path = dir.join("data.bin");
        write_atomic(&StdFs, &path, b"payload").unwrap();
        assert_eq!(StdFs.read(&path).unwrap(), b"payload");
        assert!(!path.with_extension("tmp").exists());
        // overwrites atomically
        write_atomic(&StdFs, &path, b"v2").unwrap();
        assert_eq!(StdFs.read(&path).unwrap(), b"v2");
    }

    #[test]
    fn splitmix_stream_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        let mut hits = 0;
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                hits += 1;
            }
        }
        assert!((300..700).contains(&hits), "wildly skewed: {hits}");
    }
}
