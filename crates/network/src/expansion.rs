//! Incremental network expansion — the query-time primitive of the UOTS
//! algorithm.
//!
//! The UOTS search performs Dijkstra expansion *concurrently* from every
//! query source, advancing whichever source the scheduler picks next. That
//! requires a Dijkstra that can be driven one settled vertex at a time and
//! interrogated for its current radius, which is exactly what
//! [`NetworkExpansion`] provides:
//!
//! * [`NetworkExpansion::next_settled`] settles and returns the next-nearest
//!   vertex (vertices come out in nondecreasing distance — Dijkstra's
//!   invariant);
//! * [`NetworkExpansion::radius`] returns the distance of the most recently
//!   settled vertex, which is a valid **lower bound** on the network
//!   distance to every vertex not yet settled. This is the `r_i` of the
//!   paper's pruning bounds: the first sample point of a trajectory settled
//!   by the expansion realizes the exact point-to-trajectory distance, and
//!   until then the radius lower-bounds it.
//!
//! The struct owns epoch-stamped scratch buffers sized to the network so a
//! single allocation can be reused across many queries (`restart`), which
//! keeps the per-query cost allocation-free on the hot path.

use crate::heap::{HeapEntry, TotalF64};
use crate::{NodeId, RoadNetwork};
use std::collections::BinaryHeap;

/// A vertex settled by an expansion, with its exact network distance from
/// the expansion source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settled {
    /// The settled vertex.
    pub node: NodeId,
    /// Exact network distance from the expansion source.
    pub dist: f64,
}

/// Resumable single-source Dijkstra over a [`RoadNetwork`].
///
/// ```
/// use uots_network::{generators, expansion::NetworkExpansion, NodeId};
///
/// let net = generators::grid_city(&generators::GridCityConfig::tiny(7)).unwrap();
/// let mut exp = NetworkExpansion::new(&net);
/// exp.start(NodeId(0));
/// let mut last = 0.0;
/// while let Some(s) = exp.next_settled() {
///     assert!(s.dist >= last); // nondecreasing settle order
///     last = s.dist;
///     assert!(exp.radius() >= s.dist - 1e-12);
/// }
/// assert!(exp.is_exhausted());
/// ```
pub struct NetworkExpansion<'a> {
    net: &'a RoadNetwork,
    source: NodeId,
    /// Tentative distances; only meaningful where `stamp == epoch`.
    dist: Vec<f64>,
    /// Which vertices are settled; only meaningful where `stamp == epoch`.
    settled: Vec<bool>,
    /// Epoch stamps enabling O(1) logical reset of `dist` / `settled`.
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
    radius: f64,
    settled_count: usize,
    started: bool,
}

impl<'a> NetworkExpansion<'a> {
    /// Allocates scratch state for expansions over `net`. Call
    /// [`start`](Self::start) before advancing.
    pub fn new(net: &'a RoadNetwork) -> Self {
        let n = net.num_nodes();
        NetworkExpansion {
            net,
            source: NodeId(0),
            dist: vec![f64::INFINITY; n],
            settled: vec![false; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            radius: 0.0,
            settled_count: 0,
            started: false,
        }
    }

    /// Convenience constructor that allocates and immediately starts from
    /// `source`.
    pub fn from_source(net: &'a RoadNetwork, source: NodeId) -> Self {
        let mut e = Self::new(net);
        e.start(source);
        e
    }

    /// (Re)starts the expansion from `source`, logically clearing all state
    /// in O(1) (epoch bump) plus the heap clear.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a vertex of the network.
    pub fn start(&mut self, source: NodeId) {
        assert!(self.net.contains_node(source), "source not in network");
        self.source = source;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // extremely unlikely wrap-around: hard-reset the stamps
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.radius = 0.0;
        self.settled_count = 0;
        self.started = true;
        self.set_dist(source, 0.0);
        self.heap.push(HeapEntry {
            dist: TotalF64(0.0),
            node: source,
        });
    }

    #[inline]
    fn is_current(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    #[inline]
    fn set_dist(&mut self, v: NodeId, d: f64) {
        let i = v.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.settled[i] = false;
        }
        self.dist[i] = d;
    }

    /// The expansion source.
    ///
    /// # Panics
    ///
    /// Panics if [`start`](Self::start) has not been called.
    pub fn source(&self) -> NodeId {
        assert!(self.started, "expansion not started");
        self.source
    }

    /// Settles and returns the next-nearest unsettled vertex, or `None` when
    /// every vertex reachable from the source has been settled.
    ///
    /// # Panics
    ///
    /// Panics if [`start`](Self::start) has not been called.
    pub fn next_settled(&mut self) -> Option<Settled> {
        assert!(self.started, "expansion not started");
        while let Some(HeapEntry {
            dist: TotalF64(d),
            node: v,
        }) = self.heap.pop()
        {
            let i = v.index();
            if self.is_current(v) && self.settled[i] {
                continue; // stale entry
            }
            debug_assert!(self.is_current(v));
            self.settled[i] = true;
            self.settled_count += 1;
            debug_assert!(
                d >= self.radius - 1e-12,
                "settle order must be nondecreasing"
            );
            self.radius = d;
            for (u, w) in self.net.neighbors(v) {
                let nd = d + w;
                let better = !self.is_current(u) || nd < self.dist[u.index()];
                if better && !(self.is_current(u) && self.settled[u.index()]) {
                    self.set_dist(u, nd);
                    self.heap.push(HeapEntry {
                        dist: TotalF64(nd),
                        node: u,
                    });
                }
            }
            return Some(Settled { node: v, dist: d });
        }
        None
    }

    /// Advances the expansion until its radius reaches at least `target`,
    /// collecting settled vertices into `out`. Returns `false` when the
    /// expansion exhausted the component first.
    pub fn expand_to_radius(&mut self, target: f64, out: &mut Vec<Settled>) -> bool {
        while self.radius < target {
            match self.next_settled() {
                Some(s) => out.push(s),
                None => return false,
            }
        }
        true
    }

    /// Distance of the most recently settled vertex: a valid lower bound on
    /// the network distance from the source to any vertex not yet settled
    /// (and, once exhausted, `f64::INFINITY` would be valid for unreached
    /// vertices — see [`unsettled_lower_bound`](Self::unsettled_lower_bound)).
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Lower bound on the distance to any vertex not yet settled:
    /// the current radius while the expansion is live, `f64::INFINITY` once
    /// the whole component is exhausted (nothing reachable remains).
    #[inline]
    pub fn unsettled_lower_bound(&self) -> f64 {
        if self.is_exhausted() {
            f64::INFINITY
        } else {
            self.radius
        }
    }

    /// Whether the whole connected component of the source has been settled.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of vertices settled so far.
    #[inline]
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Current size of the Dijkstra frontier: pending heap entries,
    /// including stale duplicates awaiting lazy deletion. This is the
    /// expansion's live memory footprint beyond the O(|V|) scratch arrays,
    /// reported as `peak_frontier` in search metrics.
    #[inline]
    pub fn frontier_len(&self) -> usize {
        self.heap.len()
    }

    /// Exact distance to `v` if it has been settled, `None` otherwise.
    #[inline]
    pub fn settled_distance(&self, v: NodeId) -> Option<f64> {
        let i = v.index();
        (self.is_current(v) && self.settled[i]).then(|| self.dist[i])
    }

    /// Snapshot of the live Dijkstra frontier: every reached-but-unsettled
    /// vertex with its best tentative distance, deduplicated (the heap may
    /// hold stale duplicates) and sorted by `(dist, node)` for determinism.
    ///
    /// Together with the settled set and the radius this is a complete,
    /// consistent description of the expansion's progress: feeding it back
    /// through [`resume`](Self::resume) continues the expansion with exactly
    /// the distances a fresh run would produce.
    pub fn frontier_snapshot(&self) -> Vec<(NodeId, f64)> {
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<(NodeId, f64)> = Vec::new();
        for e in self.heap.iter() {
            let v = e.node;
            let i = v.index();
            if self.is_current(v) && !self.settled[i] && seen.insert(v) {
                out.push((v, self.dist[i]));
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// (Re)starts the expansion from `source`, seeding it with a previously
    /// recorded prefix instead of from scratch: `settled` vertices are
    /// marked settled with their exact distances (they will **not** be
    /// emitted by [`next_settled`](Self::next_settled) again), `frontier`
    /// vertices become the pending heap, and `radius` restores the
    /// last-settled distance. Reuses the scratch buffers like
    /// [`start`](Self::start).
    ///
    /// The caller must pass a consistent prefix (as captured by
    /// [`frontier_snapshot`](Self::frontier_snapshot) plus the settle
    /// sequence): settled distances exact, frontier distances equal to the
    /// best path through the settled set. Resuming then yields the same
    /// settle distances a fresh run from `source` would.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a vertex of the network.
    pub fn resume(&mut self, source: NodeId, settled: &[Settled], frontier: &[(NodeId, f64)]) {
        assert!(self.net.contains_node(source), "source not in network");
        self.source = source;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.radius = settled.last().map_or(0.0, |s| s.dist);
        self.settled_count = settled.len();
        self.started = true;
        for s in settled {
            self.set_dist(s.node, s.dist);
            self.settled[s.node.index()] = true;
        }
        for &(v, d) in frontier {
            debug_assert!(
                !(self.is_current(v) && self.settled[v.index()]),
                "frontier vertex already settled"
            );
            self.set_dist(v, d);
            self.heap.push(HeapEntry {
                dist: TotalF64(d),
                node: v,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path_tree;
    use crate::{NetworkBuilder, Point};

    fn line(n: usize) -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], None).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn settles_in_distance_order() {
        let net = line(6);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(2));
        let settled: Vec<(u32, f64)> = std::iter::from_fn(|| exp.next_settled())
            .map(|s| (s.node.0, s.dist))
            .collect();
        assert_eq!(settled.len(), 6);
        assert_eq!(settled[0], (2, 0.0));
        for w in settled.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(exp.is_exhausted());
        assert_eq!(exp.unsettled_lower_bound(), f64::INFINITY);
    }

    #[test]
    fn matches_full_dijkstra() {
        let net = line(10);
        let tree = shortest_path_tree(&net, NodeId(0));
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        while let Some(s) = exp.next_settled() {
            assert_eq!(tree.distance(s.node), Some(s.dist));
        }
        assert_eq!(exp.settled_count(), 10);
    }

    #[test]
    fn radius_lower_bounds_unsettled() {
        let net = line(10);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        let tree = shortest_path_tree(&net, NodeId(0));
        for _ in 0..5 {
            exp.next_settled();
        }
        let r = exp.radius();
        for v in net.node_ids() {
            if exp.settled_distance(v).is_none() {
                assert!(tree.distance(v).unwrap() >= r);
            }
        }
    }

    #[test]
    fn restart_reuses_buffers() {
        let net = line(8);
        let mut exp = NetworkExpansion::new(&net);
        exp.start(NodeId(0));
        while exp.next_settled().is_some() {}
        assert_eq!(exp.settled_count(), 8);

        exp.start(NodeId(7));
        assert_eq!(exp.settled_count(), 0);
        assert_eq!(exp.radius(), 0.0);
        let first = exp.next_settled().unwrap();
        assert_eq!(first.node, NodeId(7));
        assert_eq!(first.dist, 0.0);
        let second = exp.next_settled().unwrap();
        assert_eq!(second.node, NodeId(6));
        assert_eq!(second.dist, 1.0);
        // distances from the previous run must not leak through
        assert_eq!(exp.settled_distance(NodeId(0)), None);
    }

    #[test]
    fn expand_to_radius_stops_at_target() {
        let net = line(10);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        let mut out = Vec::new();
        let alive = exp.expand_to_radius(3.0, &mut out);
        assert!(alive);
        assert!(exp.radius() >= 3.0);
        assert!(out.iter().any(|s| s.node == NodeId(3)));
        assert!(out.iter().all(|s| s.dist <= 3.0));
    }

    #[test]
    fn expand_to_radius_reports_exhaustion() {
        let net = line(4);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        let mut out = Vec::new();
        let alive = exp.expand_to_radius(100.0, &mut out);
        assert!(!alive);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn settled_distance_visibility() {
        let net = line(5);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        assert_eq!(exp.settled_distance(NodeId(0)), None); // source not yet popped
        exp.next_settled();
        assert_eq!(exp.settled_distance(NodeId(0)), Some(0.0));
        assert_eq!(exp.settled_distance(NodeId(4)), None);
    }

    #[test]
    fn frontier_tracks_pending_entries() {
        let net = line(6);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        assert_eq!(exp.frontier_len(), 1); // just the source
        while exp.next_settled().is_some() {
            // a line graph keeps at most a couple of pending entries
            assert!(exp.frontier_len() <= 2);
        }
        assert_eq!(exp.frontier_len(), 0); // exhausted
    }

    #[test]
    #[should_panic(expected = "expansion not started")]
    fn advancing_unstarted_expansion_panics() {
        let net = line(3);
        let mut exp = NetworkExpansion::new(&net);
        exp.next_settled();
    }

    /// 4×4 grid via the builder so the frontier holds several entries.
    fn grid4() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let ids: Vec<NodeId> = (0..16)
            .map(|i| b.add_node(Point::new((i % 4) as f64, (i / 4) as f64)))
            .collect();
        for r in 0..4 {
            for c in 0..4 {
                let i = r * 4 + c;
                if c + 1 < 4 {
                    b.add_edge(ids[i], ids[i + 1], None).unwrap();
                }
                if r + 1 < 4 {
                    b.add_edge(ids[i], ids[i + 4], None).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn snapshot_resume_continues_identically() {
        let net = grid4();
        for cut in [0usize, 1, 3, 7, 12, 16] {
            // reference run, recording everything
            let mut reference = NetworkExpansion::from_source(&net, NodeId(0));
            let full: Vec<Settled> = std::iter::from_fn(|| reference.next_settled()).collect();

            // prefix run up to `cut`, snapshot, resume in a fresh expansion
            let mut prefix = NetworkExpansion::from_source(&net, NodeId(0));
            let mut head = Vec::new();
            for _ in 0..cut {
                head.push(prefix.next_settled().unwrap());
            }
            let frontier = prefix.frontier_snapshot();
            let mut resumed = NetworkExpansion::new(&net);
            resumed.resume(NodeId(0), &head, &frontier);
            assert_eq!(resumed.settled_count(), cut);
            assert_eq!(resumed.radius(), head.last().map_or(0.0, |s| s.dist));

            let tail: Vec<Settled> = std::iter::from_fn(|| resumed.next_settled()).collect();
            assert_eq!(head.len() + tail.len(), full.len(), "cut={cut}");
            // distances must match the reference exactly; settle order of
            // equal-distance vertices may differ, so compare sorted
            let mut got: Vec<(u32, f64)> = head
                .iter()
                .chain(tail.iter())
                .map(|s| (s.node.0, s.dist))
                .collect();
            let mut want: Vec<(u32, f64)> = full.iter().map(|s| (s.node.0, s.dist)).collect();
            got.sort_by_key(|a| a.0);
            want.sort_by_key(|a| a.0);
            assert_eq!(got, want, "cut={cut}");
            // settled vertices from the prefix are queryable but not re-emitted
            for s in &head {
                assert_eq!(resumed.settled_distance(s.node), Some(s.dist));
                assert!(!tail.iter().any(|t| t.node == s.node));
            }
        }
    }

    #[test]
    fn resume_from_exhausted_prefix_is_exhausted() {
        let net = line(5);
        let mut exp = NetworkExpansion::from_source(&net, NodeId(2));
        let all: Vec<Settled> = std::iter::from_fn(|| exp.next_settled()).collect();
        assert!(exp.frontier_snapshot().is_empty());

        let mut resumed = NetworkExpansion::new(&net);
        resumed.resume(NodeId(2), &all, &[]);
        assert!(resumed.is_exhausted());
        assert_eq!(resumed.next_settled(), None);
        assert_eq!(resumed.unsettled_lower_bound(), f64::INFINITY);
        assert_eq!(resumed.settled_distance(NodeId(0)), Some(2.0));
    }

    #[test]
    fn snapshot_dedups_stale_heap_entries() {
        let net = grid4();
        let mut exp = NetworkExpansion::from_source(&net, NodeId(0));
        for _ in 0..5 {
            exp.next_settled();
        }
        let snap = exp.frontier_snapshot();
        let mut nodes: Vec<u32> = snap.iter().map(|(v, _)| v.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), snap.len(), "no duplicate frontier vertices");
        for (v, d) in &snap {
            assert_eq!(exp.settled_distance(*v), None, "frontier is unsettled");
            assert!(*d >= exp.radius() - 1e-12, "tentative >= radius");
        }
    }
}
