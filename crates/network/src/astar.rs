//! A* point-to-point shortest paths with an admissible Euclidean heuristic.
//!
//! Used by the trip generator (which needs millions of origin–destination
//! routes) and available to library users as a faster alternative to plain
//! Dijkstra for point-to-point queries.

use crate::heap::{HeapEntry, TotalF64};
use crate::{NodeId, RoadNetwork};
use std::collections::BinaryHeap;

/// Result of a point-to-point A* search.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Vertices of the shortest path, source first, target last.
    pub path: Vec<NodeId>,
    /// Network length of the path.
    pub distance: f64,
}

/// Reusable A* searcher over one network.
///
/// The Euclidean heuristic is pre-scaled by
/// [`RoadNetwork::heuristic_scale`], which keeps it admissible even when
/// some edge weights undercut the straight-line distance between their
/// endpoints (never the case for generator output, but guarded regardless).
pub struct AStar<'a> {
    net: &'a RoadNetwork,
    scale: f64,
    g: Vec<f64>,
    parent: Vec<Option<NodeId>>,
    settled: Vec<bool>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl<'a> AStar<'a> {
    /// Allocates a searcher for `net`.
    pub fn new(net: &'a RoadNetwork) -> Self {
        let n = net.num_nodes();
        AStar {
            net,
            scale: net.heuristic_scale(),
            g: vec![f64::INFINITY; n],
            parent: vec![None; n],
            settled: vec![false; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn touch(&mut self, v: NodeId) {
        let i = v.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.g[i] = f64::INFINITY;
            self.parent[i] = None;
            self.settled[i] = false;
        }
    }

    #[inline]
    fn is_settled(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.epoch && self.settled[v.index()]
    }

    /// Shortest route from `source` to `target`, or `None` when
    /// disconnected. Scratch buffers are reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is not in the network.
    pub fn route(&mut self, source: NodeId, target: NodeId) -> Option<Route> {
        assert!(self.net.contains_node(source) && self.net.contains_node(target));
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();

        let goal = self.net.point(target);
        let h = |net: &RoadNetwork, v: NodeId, scale: f64| net.point(v).distance(&goal) * scale;

        self.touch(source);
        self.g[source.index()] = 0.0;
        self.heap.push(HeapEntry {
            dist: TotalF64(h(self.net, source, self.scale)),
            node: source,
        });

        while let Some(HeapEntry { node: v, .. }) = self.heap.pop() {
            if self.is_settled(v) {
                continue;
            }
            self.settled[v.index()] = true;
            if v == target {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(p) = self.parent[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(Route {
                    distance: self.g[target.index()],
                    path,
                });
            }
            let gv = self.g[v.index()];
            for (u, w) in self.net.neighbors(v) {
                if self.is_settled(u) {
                    continue;
                }
                self.touch(u);
                let ng = gv + w;
                if ng < self.g[u.index()] {
                    self.g[u.index()] = ng;
                    self.parent[u.index()] = Some(v);
                    self.heap.push(HeapEntry {
                        dist: TotalF64(ng + h(self.net, u, self.scale)),
                        node: u,
                    });
                }
            }
        }
        None
    }

    /// Shortest network distance from `source` to `target`, or `None` when
    /// disconnected.
    pub fn distance(&mut self, source: NodeId, target: NodeId) -> Option<f64> {
        self.route(source, target).map(|r| r.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::generators::{grid_city, GridCityConfig};
    use crate::{NetworkBuilder, Point};

    #[test]
    fn astar_equals_dijkstra_on_grid() {
        let net = grid_city(&GridCityConfig::tiny(9)).unwrap();
        let mut astar = AStar::new(&net);
        let pairs = [(0u32, 80u32), (5, 43), (12, 12), (3, 77)];
        for (a, b) in pairs {
            let expect = dijkstra::distance(&net, NodeId(a), NodeId(b));
            let got = astar.distance(NodeId(a), NodeId(b));
            match (expect, got) {
                (Some(e), Some(g)) => assert!((e - g).abs() < 1e-9, "{a}->{b}: {e} vs {g}"),
                (e, g) => assert_eq!(e.is_some(), g.is_some()),
            }
        }
    }

    #[test]
    fn route_endpoints_and_length_are_consistent() {
        let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
        let mut astar = AStar::new(&net);
        let r = astar.route(NodeId(0), NodeId(35)).unwrap();
        assert_eq!(*r.path.first().unwrap(), NodeId(0));
        assert_eq!(*r.path.last().unwrap(), NodeId(35));
        // path edges must exist and sum to the reported distance
        let mut sum = 0.0;
        for w in r.path.windows(2) {
            let weight = net
                .neighbors(w[0])
                .find(|(u, _)| *u == w[1])
                .map(|(_, w)| w)
                .expect("consecutive path vertices must be adjacent");
            sum += weight;
        }
        assert!((sum - r.distance).abs() < 1e-9);
    }

    #[test]
    fn same_source_and_target() {
        let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
        let mut astar = AStar::new(&net);
        let r = astar.route(NodeId(5), NodeId(5)).unwrap();
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.path, vec![NodeId(5)]);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(5.0, 5.0));
        b.add_edge(v0, v1, None).unwrap();
        let net = b.build().unwrap();
        let mut astar = AStar::new(&net);
        assert_eq!(astar.distance(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn reuse_across_queries_is_clean() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let mut astar = AStar::new(&net);
        let d1 = astar.distance(NodeId(0), NodeId(24)).unwrap();
        let d2 = astar.distance(NodeId(24), NodeId(0)).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
        for _ in 0..10 {
            assert!((astar.distance(NodeId(0), NodeId(24)).unwrap() - d1).abs() < 1e-12);
        }
    }
}
