//! All-pairs shortest path distances via Floyd–Warshall.
//!
//! Two roles in this workspace:
//!
//! * **test oracle** — property tests compare Dijkstra / A* / expansion
//!   results against this independent `O(|V|³)` implementation on small
//!   random graphs;
//! * **baseline acceleration** — the paper family pre-computes all-pair
//!   network distances to accelerate baselines on small networks ("TF-A" in
//!   the join paper); the `TextFirst` baseline can optionally be fed a
//!   [`DistanceMatrix`] the same way.

use crate::{NodeId, RoadNetwork};

/// A dense `|V| × |V|` matrix of shortest-path distances.
///
/// Memory is `8·|V|²` bytes — only use for networks of up to a few thousand
/// vertices (tests, small baselines).
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all-pairs distances for `net` with Floyd–Warshall.
    pub fn compute(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let mut dist = vec![f64::INFINITY; n * n];
        for v in 0..n {
            dist[v * n + v] = 0.0;
        }
        for e in net.edges() {
            let (a, b) = (e.a.index(), e.b.index());
            // parallel edges: keep the lighter one
            if e.weight < dist[a * n + b] {
                dist[a * n + b] = e.weight;
                dist[b * n + a] = e.weight;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                // manual row indexing keeps the inner loop tight
                let (row_k, row_i) = if i < k {
                    let (lo, hi) = dist.split_at_mut(k * n);
                    (&hi[..n], &mut lo[i * n..i * n + n])
                } else if i > k {
                    let (lo, hi) = dist.split_at_mut(i * n);
                    (&lo[k * n..k * n + n], &mut hi[..n])
                } else {
                    continue;
                };
                for j in 0..n {
                    let alt = dik + row_k[j];
                    if alt < row_i[j] {
                        row_i[j] = alt;
                    }
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Number of vertices the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (zero vertices).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Shortest-path distance between `a` and `b`; `None` when disconnected.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<f64> {
        assert!(a.index() < self.n && b.index() < self.n);
        let d = self.dist[a.index() * self.n + b.index()];
        d.is_finite().then_some(d)
    }

    /// The graph diameter: the largest finite pairwise distance.
    pub fn diameter(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path_tree;
    use crate::{NetworkBuilder, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(seed: u64, n: usize, extra_edges: usize) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetworkBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(Point::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0)))
            .collect();
        // random spanning tree keeps it connected
        for i in 1..n {
            let j = rng.gen_range(0..i);
            b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 5.0 + 0.1))
                .unwrap();
        }
        for _ in 0..extra_edges {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                b.add_edge(ids[i], ids[j], Some(rng.gen::<f64>() * 5.0 + 0.1))
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5u64 {
            let net = random_graph(seed, 30, 40);
            let m = DistanceMatrix::compute(&net);
            for src in [NodeId(0), NodeId(7), NodeId(29)] {
                let tree = shortest_path_tree(&net, src);
                for v in net.node_ids() {
                    match (m.get(src, v), tree.distance(v)) {
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-9, "seed {seed} {src}->{v}: {a} vs {b}")
                        }
                        (a, b) => assert_eq!(a.is_some(), b.is_some()),
                    }
                }
            }
        }
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let net = random_graph(42, 20, 15);
        let m = DistanceMatrix::compute(&net);
        for a in net.node_ids() {
            assert_eq!(m.get(a, a), Some(0.0));
            for bb in net.node_ids() {
                assert_eq!(m.get(a, bb), m.get(bb, a));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let net = random_graph(7, 15, 20);
        let m = DistanceMatrix::compute(&net);
        for a in net.node_ids() {
            for bb in net.node_ids() {
                for c in net.node_ids() {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (m.get(a, bb), m.get(bb, c), m.get(a, c))
                    {
                        assert!(ac <= ab + bc + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(1.0, 0.0));
        b.add_edge(v0, v1, Some(5.0)).unwrap();
        b.add_edge(v0, v1, Some(2.0)).unwrap();
        let net = b.build().unwrap();
        let m = DistanceMatrix::compute(&net);
        assert_eq!(m.get(NodeId(0), NodeId(1)), Some(2.0));
    }

    #[test]
    fn disconnected_pairs_are_none_and_diameter_ignores_them() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(9.0, 9.0));
        b.add_edge(v0, v1, Some(3.0)).unwrap();
        let net = b.build().unwrap();
        let m = DistanceMatrix::compute(&net);
        assert_eq!(m.get(NodeId(0), NodeId(2)), None);
        assert_eq!(m.diameter(), 3.0);
    }
}
