//! A total-order wrapper for `f64` priorities plus the min-heap entry type
//! shared by all shortest-path routines in this crate.

use crate::NodeId;
use std::cmp::Ordering;

/// An `f64` with a total order, for use as a binary-heap priority.
///
/// All distances produced by this crate are finite and non-negative, so the
/// wrapper simply treats NaN as greatest (it never occurs in practice but
/// must not violate `Ord`'s contract).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap entry: `std::collections::BinaryHeap` is a max-heap, so the
/// ordering is reversed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeapEntry {
    pub dist: TotalF64,
    pub node: NodeId,
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: smallest distance first; ties broken by node id for
        // determinism across runs
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn total_f64_orders_like_f64() {
        assert!(TotalF64(1.0) < TotalF64(2.0));
        assert!(TotalF64(-1.0) < TotalF64(0.0));
        assert_eq!(TotalF64(3.5), TotalF64(3.5));
        assert!(TotalF64(f64::INFINITY) > TotalF64(1e308));
    }

    #[test]
    fn nan_is_greatest() {
        assert!(TotalF64(f64::NAN) > TotalF64(f64::INFINITY));
    }

    #[test]
    fn heap_pops_smallest_distance_first() {
        let mut h = BinaryHeap::new();
        for (d, v) in [(3.0, 1u32), (1.0, 2), (2.0, 3)] {
            h.push(HeapEntry {
                dist: TotalF64(d),
                node: NodeId(v),
            });
        }
        let order: Vec<f64> = std::iter::from_fn(|| h.pop()).map(|e| e.dist.0).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn heap_breaks_ties_by_node_id() {
        let mut h = BinaryHeap::new();
        for v in [5u32, 1, 3] {
            h.push(HeapEntry {
                dist: TotalF64(1.0),
                node: NodeId(v),
            });
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|e| e.node.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
