//! The spatial (road) network model.
//!
//! A spatial network is a connected, undirected graph `G = (V, E, F, W)`
//! where vertices are road intersections / road ends, edges are road
//! segments, `F` maps graph elements to geometries and `W` assigns each edge
//! its segment length. This matches the modelling used throughout the UOTS
//! paper family.
//!
//! Construction goes through [`NetworkBuilder`]; the frozen [`RoadNetwork`]
//! stores adjacency in compressed sparse row (CSR) form for cache-friendly
//! traversal, which is the hot path of every algorithm in this workspace.

use crate::geometry::{BBox, Point};
use crate::NetworkError;
use serde::{Deserialize, Serialize};

/// Identifier of a vertex (road intersection) in a [`RoadNetwork`].
///
/// Newtype over a dense `u32` index; valid only for the network that issued
/// it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an undirected edge (road segment) in a [`RoadNetwork`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The dense index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected road segment between two vertices with a positive length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Segment length (same unit as the coordinate plane, kilometres by
    /// convention). Always finite and strictly positive.
    pub weight: f64,
}

/// Incremental builder for [`RoadNetwork`].
///
/// ```
/// use uots_network::{NetworkBuilder, Point};
///
/// let mut b = NetworkBuilder::new();
/// let v0 = b.add_node(Point::new(0.0, 0.0));
/// let v1 = b.add_node(Point::new(1.0, 0.0));
/// let v2 = b.add_node(Point::new(1.0, 1.0));
/// b.add_edge(v0, v1, None).unwrap(); // weight = Euclidean length
/// b.add_edge(v1, v2, Some(1.5)).unwrap(); // explicit road length
/// let net = b.build().unwrap();
/// assert_eq!(net.num_nodes(), 3);
/// assert_eq!(net.num_edges(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        NetworkBuilder {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex located at `p` and returns its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(p);
        id
    }

    /// Number of vertices added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge between `a` and `b`.
    ///
    /// When `weight` is `None` the Euclidean distance between the endpoints
    /// is used, which models a straight road segment. An explicit weight
    /// models a curved segment and must be finite and strictly positive.
    ///
    /// # Errors
    ///
    /// [`NetworkError::UnknownNode`] if an endpoint has not been added;
    /// [`NetworkError::SelfLoop`] for `a == b`;
    /// [`NetworkError::BadWeight`] for non-finite or non-positive weights.
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        weight: Option<f64>,
    ) -> Result<EdgeId, NetworkError> {
        if a.index() >= self.nodes.len() {
            return Err(NetworkError::UnknownNode(a));
        }
        if b.index() >= self.nodes.len() {
            return Err(NetworkError::UnknownNode(b));
        }
        if a == b {
            return Err(NetworkError::SelfLoop(a));
        }
        let w = weight.unwrap_or_else(|| self.nodes[a.index()].distance(&self.nodes[b.index()]));
        if !w.is_finite() || w <= 0.0 {
            return Err(NetworkError::BadWeight(w));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { a, b, weight: w });
        Ok(id)
    }

    /// Freezes the builder into an immutable [`RoadNetwork`].
    ///
    /// # Errors
    ///
    /// [`NetworkError::EmptyNetwork`] when no vertices were added.
    pub fn build(self) -> Result<RoadNetwork, NetworkError> {
        if self.nodes.is_empty() {
            return Err(NetworkError::EmptyNetwork);
        }
        Ok(RoadNetwork::from_parts(self.nodes, self.edges))
    }
}

/// An immutable spatial network with CSR adjacency.
///
/// The CSR layout stores, for each vertex, a contiguous slice of
/// `(neighbour, edge weight, edge id)` triples; every undirected edge
/// appears in both endpoint slices.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
    /// CSR row offsets; `offsets[v]..offsets[v+1]` indexes the adjacency
    /// arrays of vertex `v`. Length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Flattened neighbour list (length `2 * num_edges`).
    targets: Vec<NodeId>,
    /// Weight of the half-edge at the same position in `targets`.
    weights: Vec<f64>,
    /// Edge id of the half-edge at the same position in `targets`.
    edge_ids: Vec<EdgeId>,
    bbox: BBox,
}

impl RoadNetwork {
    pub(crate) fn from_parts(nodes: Vec<Point>, edges: Vec<Edge>) -> Self {
        let n = nodes.len();
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.a.index()] += 1;
            degree[e.b.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let half = 2 * edges.len();
        let mut targets = vec![NodeId(0); half];
        let mut weights = vec![0.0f64; half];
        let mut edge_ids = vec![EdgeId(0); half];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            let ca = cursor[e.a.index()] as usize;
            targets[ca] = e.b;
            weights[ca] = e.weight;
            edge_ids[ca] = id;
            cursor[e.a.index()] += 1;
            let cb = cursor[e.b.index()] as usize;
            targets[cb] = e.a;
            weights[cb] = e.weight;
            edge_ids[cb] = id;
            cursor[e.b.index()] += 1;
        }
        let bbox = BBox::of(nodes.iter());
        RoadNetwork {
            nodes,
            edges,
            offsets,
            targets,
            weights,
            edge_ids,
            bbox,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether `v` is a valid vertex of this network.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.nodes.len()
    }

    /// Location of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this network.
    #[inline]
    pub fn point(&self, v: NodeId) -> Point {
        self.nodes[v.index()]
    }

    /// All vertex locations, indexed by [`NodeId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.nodes
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to this network.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// All edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all vertex ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Degree (number of incident road segments) of vertex `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Neighbours of `v` as `(neighbour, weight)` pairs, in insertion order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Neighbours of `v` as `(neighbour, weight, edge id)` triples.
    #[inline]
    pub fn neighbors_with_edges(
        &self,
        v: NodeId,
    ) -> impl Iterator<Item = (NodeId, f64, EdgeId)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| (self.targets[i], self.weights[i], self.edge_ids[i]))
    }

    /// Bounding box of all vertex locations.
    #[inline]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Total length of all road segments.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Ratio of minimal edge weight to endpoint Euclidean distance, capped at
    /// 1. Any admissible A* heuristic must be scaled by at most this factor.
    ///
    /// Returns 1.0 when every edge is at least as long as the straight line
    /// between its endpoints (the common case for road data).
    pub fn heuristic_scale(&self) -> f64 {
        let mut scale = 1.0f64;
        for e in &self.edges {
            let straight = self.nodes[e.a.index()].distance(&self.nodes[e.b.index()]);
            if straight > 0.0 {
                scale = scale.min(e.weight / straight);
            }
        }
        scale.min(1.0)
    }

    /// Whether the network is connected (every vertex reachable from vertex
    /// 0). The paper assumes connected networks; generators guarantee it.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for (u, _) in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Nearest vertex to `p` by linear scan. Intended for tests and tiny
    /// networks; use `uots-index`'s grid for production snapping.
    pub fn nearest_node_linear(&self, p: &Point) -> NodeId {
        let mut best = NodeId(0);
        let mut best_d = f64::INFINITY;
        for (i, q) in self.nodes.iter().enumerate() {
            let d = p.distance_sq(q);
            if d < best_d {
                best_d = d;
                best = NodeId(i as u32);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(3.0, 0.0));
        let v2 = b.add_node(Point::new(0.0, 4.0));
        b.add_edge(v0, v1, None).unwrap();
        b.add_edge(v1, v2, None).unwrap();
        b.add_edge(v2, v0, None).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_defaults_weight_to_euclidean() {
        let net = triangle();
        assert_eq!(net.edge(EdgeId(0)).weight, 3.0);
        assert_eq!(net.edge(EdgeId(1)).weight, 5.0);
        assert_eq!(net.edge(EdgeId(2)).weight, 4.0);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(1.0, 0.0));
        assert!(matches!(
            b.add_edge(v0, NodeId(9), None),
            Err(NetworkError::UnknownNode(NodeId(9)))
        ));
        assert!(matches!(
            b.add_edge(v0, v0, None),
            Err(NetworkError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_edge(v0, v1, Some(0.0)),
            Err(NetworkError::BadWeight(_))
        ));
        assert!(matches!(
            b.add_edge(v0, v1, Some(f64::NAN)),
            Err(NetworkError::BadWeight(_))
        ));
        assert!(matches!(
            b.add_edge(v0, v1, Some(-1.0)),
            Err(NetworkError::BadWeight(_))
        ));
    }

    #[test]
    fn empty_network_is_rejected() {
        assert!(matches!(
            NetworkBuilder::new().build(),
            Err(NetworkError::EmptyNetwork)
        ));
    }

    #[test]
    fn csr_adjacency_is_symmetric() {
        let net = triangle();
        for v in net.node_ids() {
            assert_eq!(net.degree(v), 2);
            for (u, w) in net.neighbors(v) {
                // the reverse half-edge exists with the same weight
                assert!(net
                    .neighbors(u)
                    .any(|(t, tw)| t == v && (tw - w).abs() < 1e-12));
            }
        }
    }

    #[test]
    fn neighbors_with_edges_reports_edge_ids() {
        let net = triangle();
        let mut ids: Vec<u32> = net
            .neighbors_with_edges(NodeId(0))
            .map(|(_, _, e)| e.0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn bbox_and_total_length() {
        let net = triangle();
        assert_eq!(net.bbox().min, Point::new(0.0, 0.0));
        assert_eq!(net.bbox().max, Point::new(3.0, 4.0));
        assert_eq!(net.total_length(), 12.0);
    }

    #[test]
    fn connectivity_detection() {
        let net = triangle();
        assert!(net.is_connected());

        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(9.0, 9.0)); // isolated
        b.add_edge(v0, v1, None).unwrap();
        assert!(!b.build().unwrap().is_connected());
    }

    #[test]
    fn nearest_node_linear_finds_closest() {
        let net = triangle();
        assert_eq!(net.nearest_node_linear(&Point::new(0.1, 0.1)), NodeId(0));
        assert_eq!(net.nearest_node_linear(&Point::new(2.9, 0.2)), NodeId(1));
        assert_eq!(net.nearest_node_linear(&Point::new(0.0, 3.9)), NodeId(2));
    }

    #[test]
    fn heuristic_scale_is_one_for_straight_edges() {
        assert_eq!(triangle().heuristic_scale(), 1.0);
    }

    #[test]
    fn heuristic_scale_shrinks_for_shortcut_weights() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(2.0, 0.0));
        // weight shorter than the straight line (e.g. a tunnel in bad data)
        b.add_edge(v0, v1, Some(1.0)).unwrap();
        let net = b.build().unwrap();
        assert!((net.heuristic_scale() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(7).to_string(), "v7");
    }
}
