//! Planar geometry primitives used throughout the workspace.
//!
//! Road networks in this reproduction live in a projected planar coordinate
//! system (kilometres by convention), matching the paper family's use of
//! map-matched, projected data. All distances are Euclidean in that plane;
//! network distances are sums of edge weights.

use serde::{Deserialize, Serialize};

/// A point in the projected plane. Coordinates are in kilometres by
/// convention (the unit only matters relative to the similarity decay scale,
/// see `uots-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting in kilometres.
    pub x: f64,
    /// Northing in kilometres.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. in nearest-neighbour scans).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: returns `self + t * (other - self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0, 1]`
    /// extrapolate along the segment.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Translates the point by `(dx, dy)`.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// An axis-aligned bounding box, used by the spatial grid index and the
/// synthetic network generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Minimum corner (south-west).
    pub min: Point,
    /// Maximum corner (north-east).
    pub max: Point,
}

impl BBox {
    /// Creates a bounding box from two corner points; the corners are
    /// normalized so callers may pass them in any order.
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty bounding box: the identity of [`BBox::extend`].
    pub fn empty() -> Self {
        BBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns true when no point has been added to the box.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows the box (in place) so it contains `p`.
    pub fn extend(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The smallest box containing all points of `iter`, or the empty box.
    pub fn of<'a>(iter: impl IntoIterator<Item = &'a Point>) -> Self {
        let mut b = BBox::empty();
        for p in iter {
            b.extend(p);
        }
        b
    }

    /// Width (x extent) of the box; zero when empty.
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y extent) of the box; zero when empty.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Whether `p` lies inside the box (inclusive boundaries).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Minimum Euclidean distance from `p` to the box (zero when inside).
    pub fn distance_to(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Center of the box. Undefined (NaN components) for the empty box.
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn point_distance_to_self_is_zero() {
        let p = Point::new(-2.5, 7.25);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(3.0, 5.0);
        let m = a.midpoint(&b);
        let l = a.lerp(&b, 0.5);
        assert_eq!(m, Point::new(2.0, 3.0));
        assert_eq!(m, l);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn translate_moves_point() {
        let p = Point::new(1.0, 2.0).translate(-1.0, 3.0);
        assert_eq!(p, Point::new(0.0, 5.0));
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 4.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 4.0));
        assert_eq!(b.width(), 7.0);
        assert_eq!(b.height(), 5.0);
    }

    #[test]
    fn bbox_empty_then_extend() {
        let mut b = BBox::empty();
        assert!(b.is_empty());
        b.extend(&Point::new(1.0, 2.0));
        assert!(!b.is_empty());
        assert_eq!(b.min, Point::new(1.0, 2.0));
        assert_eq!(b.max, Point::new(1.0, 2.0));
        b.extend(&Point::new(-1.0, 5.0));
        assert_eq!(b.min, Point::new(-1.0, 2.0));
        assert_eq!(b.max, Point::new(1.0, 5.0));
    }

    #[test]
    fn bbox_contains_boundary_points() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(2.0, 2.0)));
        assert!(b.contains(&Point::new(1.0, 1.0)));
        assert!(!b.contains(&Point::new(2.1, 1.0)));
    }

    #[test]
    fn bbox_distance_inside_is_zero_outside_positive() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(b.distance_to(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.distance_to(&Point::new(5.0, 2.0)), 3.0);
        assert_eq!(b.distance_to(&Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn bbox_of_iterator() {
        let pts = [
            Point::new(0.0, 1.0),
            Point::new(4.0, -2.0),
            Point::new(2.0, 2.0),
        ];
        let b = BBox::of(pts.iter());
        assert_eq!(b.min, Point::new(0.0, -2.0));
        assert_eq!(b.max, Point::new(4.0, 2.0));
        assert_eq!(b.center(), Point::new(2.0, 0.0));
    }
}
