//! ALT-style landmark lower bounds for network distances.
//!
//! A set of landmark vertices is selected with the farthest-point heuristic;
//! each stores its full shortest-path tree. The triangle inequality then
//! yields, for any pair `(a, b)`:
//!
//! ```text
//! sd(a, b) >= |sd(l, a) - sd(l, b)|        for every landmark l
//! ```
//!
//! The UOTS expansion algorithm uses the *expansion radius* as its
//! unscanned-distance lower bound (that is what the paper does); landmarks
//! are an optional extension (`f11_landmarks` ablation) that can sharpen the
//! bound for spatially distant trajectories before any expansion happens.

use crate::dijkstra::shortest_path_tree;
use crate::{NodeId, RoadNetwork};

/// Precomputed landmark distance tables.
#[derive(Debug, Clone)]
pub struct Landmarks {
    landmarks: Vec<NodeId>,
    /// `dist[l][v]` = network distance from landmark `l` to vertex `v`
    /// (`f64::INFINITY` when unreachable).
    dist: Vec<Vec<f64>>,
}

impl Landmarks {
    /// Selects `count` landmarks by farthest-point traversal starting from
    /// `start` and computes their distance tables (`count` full Dijkstras).
    ///
    /// # Panics
    ///
    /// Panics when `count == 0` or `start` is not in the network.
    pub fn select(net: &RoadNetwork, count: usize, start: NodeId) -> Self {
        assert!(count > 0, "need at least one landmark");
        assert!(net.contains_node(start));
        let mut landmarks = Vec::with_capacity(count);
        let mut dist: Vec<Vec<f64>> = Vec::with_capacity(count);

        // First landmark: the vertex farthest from `start` (classic trick to
        // avoid a central landmark).
        let t0 = shortest_path_tree(net, start);
        let first = argmax_finite(t0.distances()).unwrap_or(start);
        landmarks.push(first);
        dist.push(shortest_path_tree(net, first).distances().to_vec());

        while landmarks.len() < count {
            // farthest point from the current landmark set: maximize the
            // minimum distance to any chosen landmark
            let n = net.num_nodes();
            let mut best_v = None;
            let mut best_d = -1.0;
            for v in 0..n {
                let mut min_d = f64::INFINITY;
                for table in &dist {
                    min_d = min_d.min(table[v]);
                }
                if min_d.is_finite() && min_d > best_d {
                    best_d = min_d;
                    best_v = Some(NodeId(v as u32));
                }
            }
            let Some(next) = best_v else { break };
            if landmarks.contains(&next) {
                break; // graph smaller than requested landmark count
            }
            landmarks.push(next);
            dist.push(shortest_path_tree(net, next).distances().to_vec());
        }
        Landmarks { landmarks, dist }
    }

    /// The selected landmark vertices.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Lower bound on `sd(a, b)`: the best triangle-inequality bound over
    /// all landmarks.
    ///
    /// A landmark leg that does not reach one of the vertices (distance
    /// `f64::INFINITY`) contributes the **vacuous** bound `0.0` — the naive
    /// `|sd(l,a) − sd(l,b)|` would evaluate `INFINITY − INFINITY = NaN` on a
    /// disconnected network, which silently poisons every downstream
    /// comparison (`NaN` fails both `<` and `>=`). The result is therefore
    /// always a finite, non-negative, non-`NaN` lower bound.
    #[inline]
    pub fn lower_bound(&self, a: NodeId, b: NodeId) -> f64 {
        let mut best = 0.0f64;
        for table in &self.dist {
            let (da, db) = (table[a.index()], table[b.index()]);
            // both legs finite — the only case where the subtraction is safe
            if da.is_finite() && db.is_finite() {
                best = best.max((da - db).abs());
            }
        }
        debug_assert!(best.is_finite() && best >= 0.0);
        best
    }

    /// Lower bound on the distance from `a` to the *nearest* of `targets`:
    /// the minimum of the pairwise lower bounds. An empty target set yields
    /// the vacuous bound `0.0` (a `min` over nothing would be `+∞`, which
    /// as an admission bound would wrongly prune everything).
    pub fn lower_bound_to_set(&self, a: NodeId, targets: &[NodeId]) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        targets
            .iter()
            .map(|&t| self.lower_bound(a, t))
            .fold(f64::INFINITY, f64::min)
    }
}

fn argmax_finite(values: &[f64]) -> Option<NodeId> {
    let mut best = None;
    let mut best_d = -1.0;
    for (i, &d) in values.iter().enumerate() {
        if d.is_finite() && d > best_d {
            best_d = d;
            best = Some(NodeId(i as u32));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::generators::{grid_city, GridCityConfig};

    #[test]
    fn bounds_never_exceed_true_distance() {
        let net = grid_city(&GridCityConfig::new(12, 12).with_seed(17)).unwrap();
        let lm = Landmarks::select(&net, 4, NodeId(0));
        assert_eq!(lm.landmarks().len(), 4);
        let pairs = [(0u32, 100u32), (5, 77), (33, 130), (143, 0)];
        for (a, b) in pairs {
            let lb = lm.lower_bound(NodeId(a), NodeId(b));
            let d = dijkstra::distance(&net, NodeId(a), NodeId(b)).unwrap();
            assert!(lb <= d + 1e-9, "{a}->{b}: lb {lb} > d {d}");
        }
    }

    #[test]
    fn bound_to_self_is_zero() {
        let net = grid_city(&GridCityConfig::tiny(5)).unwrap();
        let lm = Landmarks::select(&net, 2, NodeId(0));
        for v in net.node_ids() {
            assert_eq!(lm.lower_bound(v, v), 0.0);
        }
    }

    #[test]
    fn bound_is_useful_for_far_pairs() {
        // On a regular lattice with corner landmarks, opposite corners must
        // get a substantially positive bound.
        let net = grid_city(&GridCityConfig::tiny(8)).unwrap();
        let lm = Landmarks::select(&net, 4, NodeId(0));
        let lb = lm.lower_bound(NodeId(0), NodeId(63));
        assert!(lb > 0.0);
        let d = dijkstra::distance(&net, NodeId(0), NodeId(63)).unwrap();
        assert!(lb <= d);
    }

    #[test]
    fn set_bound_is_min_of_pairwise() {
        let net = grid_city(&GridCityConfig::tiny(6)).unwrap();
        let lm = Landmarks::select(&net, 3, NodeId(0));
        let targets = [NodeId(35), NodeId(5), NodeId(12)];
        let set_lb = lm.lower_bound_to_set(NodeId(0), &targets);
        let min_pair = targets
            .iter()
            .map(|&t| lm.lower_bound(NodeId(0), t))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(set_lb, min_pair);
    }

    /// Two disconnected line components: `0–1–2` and `3–4–5`.
    fn disconnected() -> RoadNetwork {
        use crate::{NetworkBuilder, Point};
        let mut b = NetworkBuilder::new();
        let ids: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, if i < 3 { 0.0 } else { 50.0 })))
            .collect();
        b.add_edge(ids[0], ids[1], None).unwrap();
        b.add_edge(ids[1], ids[2], None).unwrap();
        b.add_edge(ids[3], ids[4], None).unwrap();
        b.add_edge(ids[4], ids[5], None).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn disconnected_network_yields_vacuous_bounds_never_nan() {
        // Regression: unreachable landmark legs used to risk
        // INFINITY − INFINITY = NaN in the triangle-inequality bound.
        let net = disconnected();
        let lm = Landmarks::select(&net, 2, NodeId(0));
        // landmarks live in the start component only
        for &l in lm.landmarks() {
            assert!(l.0 < 3, "landmark {l:?} escaped the start component");
        }
        for a in net.node_ids() {
            for b in net.node_ids() {
                let lb = lm.lower_bound(a, b);
                assert!(!lb.is_nan(), "{a:?}->{b:?} produced NaN");
                assert!(lb.is_finite() && lb >= 0.0, "{a:?}->{b:?}: {lb}");
            }
        }
        // a pair with one or both endpoints unreachable from every landmark
        // gets the vacuous bound
        assert_eq!(lm.lower_bound(NodeId(0), NodeId(4)), 0.0);
        assert_eq!(lm.lower_bound(NodeId(3), NodeId(5)), 0.0);
    }

    #[test]
    fn set_bound_handles_empty_and_unreachable_targets() {
        let net = disconnected();
        let lm = Landmarks::select(&net, 2, NodeId(0));
        // empty target set: vacuous, not +∞ (which would prune everything)
        assert_eq!(lm.lower_bound_to_set(NodeId(0), &[]), 0.0);
        // all-unreachable targets: every leg vacuous, still not NaN
        let lb = lm.lower_bound_to_set(NodeId(0), &[NodeId(3), NodeId(5)]);
        assert!(!lb.is_nan());
        assert_eq!(lb, 0.0);
        // mixed set: min of the pairwise bounds — the vacuous unreachable
        // leg (0.0) wins over the positive reachable one
        let mixed = lm.lower_bound_to_set(NodeId(0), &[NodeId(2), NodeId(4)]);
        let pair_min = lm
            .lower_bound(NodeId(0), NodeId(2))
            .min(lm.lower_bound(NodeId(0), NodeId(4)));
        assert_eq!(mixed, pair_min);
        assert_eq!(mixed, 0.0);
    }

    #[test]
    fn landmark_count_caps_at_graph_size() {
        let net = grid_city(&GridCityConfig::tiny(2)).unwrap(); // 4 vertices
        let lm = Landmarks::select(&net, 10, NodeId(0));
        assert!(lm.landmarks().len() <= 4);
        assert!(!lm.landmarks().is_empty());
    }
}
