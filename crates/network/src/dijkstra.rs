//! Dijkstra's algorithm in several guises: full shortest-path trees,
//! early-terminating point-to-point distances, many-target searches and
//! radius-bounded trees.
//!
//! These are the exact-distance workhorses used by the brute-force oracle,
//! the baselines and the data generators. The *incremental* expansion used
//! by the UOTS query algorithm lives in [`crate::expansion`].

use crate::heap::{HeapEntry, TotalF64};
use crate::{NodeId, RoadNetwork};
use std::collections::BinaryHeap;

/// A (possibly partial) shortest-path tree rooted at a source vertex.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// The root of the tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Network distance from the source to `v`, or `None` when `v` was not
    /// reached (disconnected, or outside the radius of a bounded search).
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Raw distance slice; unreachable vertices hold `f64::INFINITY`.
    #[inline]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Predecessor of `v` on its shortest path from the source.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Reconstructs the shortest path from the source to `dst` (inclusive of
    /// both endpoints), or `None` when `dst` was not reached.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        self.distance(dst)?;
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }

    /// Number of vertices reached (settled) by the search.
    pub fn reached_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_finite()).count()
    }
}

/// Computes the full shortest-path tree from `source`.
///
/// Classic binary-heap Dijkstra with stale-entry skipping:
/// `O((|V| + |E|) log |V|)`.
///
/// # Panics
///
/// Panics if `source` is not a vertex of `net`.
pub fn shortest_path_tree(net: &RoadNetwork, source: NodeId) -> ShortestPathTree {
    bounded_shortest_path_tree(net, source, f64::INFINITY)
}

/// Computes the shortest-path tree from `source`, restricted to vertices
/// within network distance `radius`.
///
/// # Panics
///
/// Panics if `source` is not a vertex of `net`.
pub fn bounded_shortest_path_tree(
    net: &RoadNetwork,
    source: NodeId,
    radius: f64,
) -> ShortestPathTree {
    assert!(net.contains_node(source), "source not in network");
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: TotalF64(0.0),
        node: source,
    });
    while let Some(HeapEntry {
        dist: TotalF64(d),
        node: v,
    }) = heap.pop()
    {
        if settled[v.index()] {
            continue; // stale entry
        }
        settled[v.index()] = true;
        for (u, w) in net.neighbors(v) {
            let nd = d + w;
            if nd < dist[u.index()] && nd <= radius {
                dist[u.index()] = nd;
                parent[u.index()] = Some(v);
                heap.push(HeapEntry {
                    dist: TotalF64(nd),
                    node: u,
                });
            }
        }
    }
    // Vertices relaxed but never settled within the radius must not report a
    // (possibly non-minimal) tentative distance.
    for v in 0..n {
        if !settled[v] {
            dist[v] = f64::INFINITY;
            parent[v] = None;
        }
    }
    ShortestPathTree {
        source,
        dist,
        parent,
    }
}

/// Network distance between `source` and `target`, terminating as soon as
/// `target` is settled. Returns `None` when the two are disconnected.
///
/// # Panics
///
/// Panics if either vertex is not in `net`.
pub fn distance(net: &RoadNetwork, source: NodeId, target: NodeId) -> Option<f64> {
    assert!(net.contains_node(source) && net.contains_node(target));
    if source == target {
        return Some(0.0);
    }
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: TotalF64(0.0),
        node: source,
    });
    while let Some(HeapEntry {
        dist: TotalF64(d),
        node: v,
    }) = heap.pop()
    {
        if settled[v.index()] {
            continue;
        }
        if v == target {
            return Some(d);
        }
        settled[v.index()] = true;
        for (u, w) in net.neighbors(v) {
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(HeapEntry {
                    dist: TotalF64(nd),
                    node: u,
                });
            }
        }
    }
    None
}

/// Network distances from `source` to each vertex in `targets`, terminating
/// once all targets are settled. Entries are `None` for unreachable targets.
///
/// # Panics
///
/// Panics if `source` or any target is not in `net`.
pub fn distances_to_many(
    net: &RoadNetwork,
    source: NodeId,
    targets: &[NodeId],
) -> Vec<Option<f64>> {
    assert!(net.contains_node(source), "source not in network");
    let n = net.num_nodes();
    let mut remaining = 0usize;
    let mut wanted = vec![false; n];
    for &t in targets {
        assert!(net.contains_node(t), "target not in network");
        if !wanted[t.index()] {
            wanted[t.index()] = true;
            remaining += 1;
        }
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: TotalF64(0.0),
        node: source,
    });
    while let Some(HeapEntry {
        dist: TotalF64(d),
        node: v,
    }) = heap.pop()
    {
        if settled[v.index()] {
            continue;
        }
        settled[v.index()] = true;
        if wanted[v.index()] {
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        for (u, w) in net.neighbors(v) {
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(HeapEntry {
                    dist: TotalF64(nd),
                    node: u,
                });
            }
        }
    }
    targets
        .iter()
        .map(|t| {
            let d = dist[t.index()];
            (settled[t.index()] && d.is_finite()).then_some(d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkBuilder, Point};

    /// 0 -1- 1 -1- 2
    /// |         /
    /// +---5----+       (direct shortcut 0-2 of weight 5, longer than 0-1-2)
    fn small() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(1.0, 0.0));
        let v2 = b.add_node(Point::new(2.0, 0.0));
        b.add_edge(v0, v1, Some(1.0)).unwrap();
        b.add_edge(v1, v2, Some(1.0)).unwrap();
        b.add_edge(v0, v2, Some(5.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn tree_distances_are_minimal() {
        let net = small();
        let t = shortest_path_tree(&net, NodeId(0));
        assert_eq!(t.distance(NodeId(0)), Some(0.0));
        assert_eq!(t.distance(NodeId(1)), Some(1.0));
        assert_eq!(t.distance(NodeId(2)), Some(2.0)); // via v1, not the weight-5 edge
        assert_eq!(t.reached_count(), 3);
    }

    #[test]
    fn tree_paths_follow_parents() {
        let net = small();
        let t = shortest_path_tree(&net, NodeId(0));
        assert_eq!(
            t.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(t.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn point_to_point_matches_tree() {
        let net = small();
        assert_eq!(distance(&net, NodeId(0), NodeId(2)), Some(2.0));
        assert_eq!(distance(&net, NodeId(2), NodeId(0)), Some(2.0));
        assert_eq!(distance(&net, NodeId(1), NodeId(1)), Some(0.0));
    }

    #[test]
    fn disconnected_targets_return_none() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_node(Point::ORIGIN);
        let v1 = b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(9.0, 9.0)); // isolated v2
        b.add_edge(v0, v1, None).unwrap();
        let net = b.build().unwrap();
        assert_eq!(distance(&net, NodeId(0), NodeId(2)), None);
        let t = shortest_path_tree(&net, NodeId(0));
        assert_eq!(t.distance(NodeId(2)), None);
        assert_eq!(t.path_to(NodeId(2)), None);
    }

    #[test]
    fn bounded_tree_respects_radius() {
        let net = small();
        let t = bounded_shortest_path_tree(&net, NodeId(0), 1.5);
        assert_eq!(t.distance(NodeId(0)), Some(0.0));
        assert_eq!(t.distance(NodeId(1)), Some(1.0));
        assert_eq!(t.distance(NodeId(2)), None); // true distance 2.0 > 1.5
    }

    #[test]
    fn bounded_tree_does_not_report_tentative_distances() {
        // v2 is relaxed via the weight-5 edge before the radius cuts off the
        // cheaper 0-1-2 route; it must not be reported at distance 5.
        let net = small();
        let t = bounded_shortest_path_tree(&net, NodeId(0), 0.5);
        assert_eq!(t.distance(NodeId(1)), None);
        assert_eq!(t.distance(NodeId(2)), None);
        assert_eq!(t.reached_count(), 1);
    }

    #[test]
    fn many_targets_with_duplicates_and_source() {
        let net = small();
        let ds = distances_to_many(
            &net,
            NodeId(0),
            &[NodeId(2), NodeId(0), NodeId(2), NodeId(1)],
        );
        assert_eq!(ds, vec![Some(2.0), Some(0.0), Some(2.0), Some(1.0)]);
    }

    #[test]
    fn many_targets_empty_list() {
        let net = small();
        assert!(distances_to_many(&net, NodeId(0), &[]).is_empty());
    }
}
