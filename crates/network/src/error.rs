//! Error type for network construction and I/O.

use crate::NodeId;

/// Errors produced while building, generating or parsing road networks.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// An edge endpoint was not previously added to the builder.
    UnknownNode(NodeId),
    /// Self-loops are not meaningful road segments.
    SelfLoop(NodeId),
    /// Edge weight was non-finite or non-positive.
    BadWeight(f64),
    /// A network must have at least one vertex.
    EmptyNetwork,
    /// A generator configuration failed validation.
    BadGeneratorConfig(String),
    /// A textual edge-list could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownNode(v) => write!(f, "unknown node {v}"),
            NetworkError::SelfLoop(v) => write!(f, "self-loop at {v}"),
            NetworkError::BadWeight(w) => write!(f, "bad edge weight {w}"),
            NetworkError::EmptyNetwork => write!(f, "network has no vertices"),
            NetworkError::BadGeneratorConfig(msg) => write!(f, "bad generator config: {msg}"),
            NetworkError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            NetworkError::UnknownNode(NodeId(3)).to_string(),
            "unknown node v3"
        );
        assert_eq!(
            NetworkError::SelfLoop(NodeId(1)).to_string(),
            "self-loop at v1"
        );
        assert!(NetworkError::BadWeight(-1.0).to_string().contains("-1"));
        assert!(NetworkError::Parse {
            line: 7,
            message: "oops".into()
        }
        .to_string()
        .contains("line 7"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&NetworkError::EmptyNetwork);
    }
}
