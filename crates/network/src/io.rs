//! Textual edge-list serialization for road networks.
//!
//! Binary/JSON serialization is available via the `serde` derives on
//! [`RoadNetwork`]; this module adds the simple whitespace-separated format
//! common for published road-network datasets (one vertex line `v <id> <x>
//! <y>`, one edge line `e <a> <b> <weight>`), so externally obtained
//! networks can be loaded without extra tooling.

use crate::geometry::Point;
use crate::{NetworkBuilder, NetworkError, NodeId, RoadNetwork};
use std::fmt::Write as _;

/// Serializes `net` to the edge-list text format.
///
/// The output round-trips through [`parse_edge_list`]; vertex ids are the
/// dense [`NodeId`] indices.
pub fn to_edge_list(net: &RoadNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# uots edge-list v1");
    let _ = writeln!(
        out,
        "# {} nodes, {} edges",
        net.num_nodes(),
        net.num_edges()
    );
    for v in net.node_ids() {
        let p = net.point(v);
        let _ = writeln!(out, "v {} {} {}", v.0, p.x, p.y);
    }
    for e in net.edges() {
        let _ = writeln!(out, "e {} {} {}", e.a.0, e.b.0, e.weight);
    }
    out
}

/// Parses the edge-list text format produced by [`to_edge_list`].
///
/// Vertex lines must precede the edges that reference them; `#`-prefixed
/// lines and blank lines are ignored. Vertex ids must be dense and appear in
/// increasing order starting at zero (the natural output order).
///
/// # Errors
///
/// [`NetworkError::Parse`] describing the offending line, or the underlying
/// builder error for semantic problems (unknown endpoints, bad weights).
pub fn parse_edge_list(text: &str) -> Result<RoadNetwork, NetworkError> {
    let mut b = NetworkBuilder::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap(); // non-empty by the check above
        let err = |message: &str| NetworkError::Parse {
            line: lineno + 1,
            message: message.to_string(),
        };
        match tag {
            "v" => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("vertex line needs a numeric id"))?;
                let x: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("vertex line needs x coordinate"))?;
                let y: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("vertex line needs y coordinate"))?;
                if id as usize != b.num_nodes() {
                    return Err(err("vertex ids must be dense and in order"));
                }
                b.add_node(Point::new(x, y));
            }
            "e" => {
                let a: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("edge line needs endpoint a"))?;
                let c: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("edge line needs endpoint b"))?;
                let w: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("edge line needs a weight"))?;
                b.add_edge(NodeId(a), NodeId(c), Some(w))?;
            }
            other => {
                return Err(err(&format!("unknown record tag `{other}`")));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_city, GridCityConfig};

    #[test]
    fn round_trip_preserves_network() {
        let net = grid_city(&GridCityConfig::new(6, 5).with_seed(11)).unwrap();
        let text = to_edge_list(&net);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nv 0 0 0\nv 1 1 0\n# middle comment\ne 0 1 1.5\n";
        let net = parse_edge_list(text).unwrap();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.edges()[0].weight, 1.5);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_edge_list("v 0 0 0\nx 1 2 3\n").unwrap_err();
        assert!(matches!(e, NetworkError::Parse { line: 2, .. }), "{e:?}");

        let e = parse_edge_list("v 5 0 0\n").unwrap_err();
        assert!(matches!(e, NetworkError::Parse { line: 1, .. }));

        let e = parse_edge_list("v 0 zero 0\n").unwrap_err();
        assert!(matches!(e, NetworkError::Parse { line: 1, .. }));
    }

    #[test]
    fn semantic_errors_surface_from_builder() {
        let e = parse_edge_list("v 0 0 0\nv 1 1 0\ne 0 9 1.0\n").unwrap_err();
        assert!(matches!(e, NetworkError::UnknownNode(NodeId(9))));

        let e = parse_edge_list("v 0 0 0\nv 1 1 0\ne 0 1 -1\n").unwrap_err();
        assert!(matches!(e, NetworkError::BadWeight(_)));
    }

    #[test]
    fn serde_json_round_trip() {
        let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
        let json = serde_json::to_string(&net).unwrap();
        let back: RoadNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
