//! Deterministic synthetic road-network generators.
//!
//! The original UOTS evaluation used the (not redistributable) Beijing Road
//! Network. These generators produce connected planar-ish networks with the
//! statistical features the algorithms care about — bounded degree, local
//! connectivity, mildly irregular block structure — at any target size, from
//! a single seed.
//!
//! Two families are provided:
//!
//! * [`grid_city`] — a jittered lattice with random block removals and
//!   optional diagonal shortcuts; resembles a planned city core (and, at
//!   ~28k vertices, the Beijing network's scale).
//! * [`ring_radial`] — concentric ring roads connected by radial spokes;
//!   resembles a European ring-road city.
//!
//! Connectivity is guaranteed by protecting a random spanning tree from
//! removal.

use crate::geometry::Point;
use crate::{NetworkBuilder, NetworkError, NodeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Minimal union-find used to protect a spanning tree during edge removal.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unites the sets of `a` and `b`; returns true when they were distinct.
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

/// Configuration of the [`grid_city`] generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCityConfig {
    /// Lattice columns (≥ 2).
    pub nx: usize,
    /// Lattice rows (≥ 2).
    pub ny: usize,
    /// Block edge length in kilometres.
    pub spacing_km: f64,
    /// Positional jitter as a fraction of `spacing_km` in `[0, 0.45]`.
    pub jitter: f64,
    /// Probability of removing a non-spanning-tree street, in `[0, 1)`.
    /// Models dead ends and super-blocks; connectivity is preserved.
    pub removal_prob: f64,
    /// Probability of adding a diagonal shortcut inside a block; models
    /// avenue-style diagonals.
    pub diagonal_prob: f64,
    /// Edge weights are Euclidean length × `1 + U(0, roughness)`; models
    /// curved streets. Keep small so A*'s heuristic stays effective.
    pub roughness: f64,
    /// RNG seed; same config + seed ⇒ identical network.
    pub seed: u64,
}

impl GridCityConfig {
    /// A realistic default city of `nx × ny` intersections.
    pub fn new(nx: usize, ny: usize) -> Self {
        GridCityConfig {
            nx,
            ny,
            spacing_km: 0.25,
            jitter: 0.2,
            removal_prob: 0.12,
            diagonal_prob: 0.04,
            roughness: 0.15,
            seed: 0x005e_ed00,
        }
    }

    /// A deterministic, perfectly regular `n × n` lattice with unit spacing:
    /// no jitter, no removals, no diagonals. Ideal for tests whose expected
    /// distances must be computable by hand (vertex `(col, row)` has id
    /// `row * n + col` and position `(col, row)`).
    pub fn tiny(n: usize) -> Self {
        GridCityConfig {
            nx: n,
            ny: n,
            spacing_km: 1.0,
            jitter: 0.0,
            removal_prob: 0.0,
            diagonal_prob: 0.0,
            roughness: 0.0,
            seed: 0,
        }
    }

    /// Overrides the seed, builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), NetworkError> {
        if self.nx < 2 || self.ny < 2 {
            return Err(NetworkError::BadGeneratorConfig(
                "grid_city requires nx >= 2 and ny >= 2".into(),
            ));
        }
        if self.spacing_km <= 0.0 || self.spacing_km.is_nan() {
            return Err(NetworkError::BadGeneratorConfig(
                "spacing_km must be positive".into(),
            ));
        }
        if !(0.0..=0.45).contains(&self.jitter) {
            return Err(NetworkError::BadGeneratorConfig(
                "jitter must be in [0, 0.45]".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.removal_prob) {
            return Err(NetworkError::BadGeneratorConfig(
                "removal_prob must be in [0, 1)".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.diagonal_prob) || self.roughness < 0.0 {
            return Err(NetworkError::BadGeneratorConfig(
                "diagonal_prob must be in [0, 1] and roughness >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// Generates a jittered-lattice city network. See [`GridCityConfig`].
///
/// The result is always connected; `num_nodes() == nx * ny`.
pub fn grid_city(cfg: &GridCityConfig) -> Result<RoadNetwork, NetworkError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (nx, ny) = (cfg.nx, cfg.ny);
    let n = nx * ny;
    let mut b = NetworkBuilder::with_capacity(n, 2 * n);
    let mut pts = Vec::with_capacity(n);

    let id = |col: usize, row: usize| NodeId((row * nx + col) as u32);
    for row in 0..ny {
        for col in 0..nx {
            let (jx, jy) = if cfg.jitter > 0.0 {
                (
                    (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter * cfg.spacing_km,
                    (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter * cfg.spacing_km,
                )
            } else {
                (0.0, 0.0)
            };
            let p = Point::new(
                col as f64 * cfg.spacing_km + jx,
                row as f64 * cfg.spacing_km + jy,
            );
            pts.push(p);
            b.add_node(p);
        }
    }

    // candidate streets: lattice neighbours
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * n);
    for row in 0..ny {
        for col in 0..nx {
            if col + 1 < nx {
                candidates.push((id(col, row), id(col + 1, row)));
            }
            if row + 1 < ny {
                candidates.push((id(col, row), id(col, row + 1)));
            }
        }
    }

    // protect a random spanning tree so removals cannot disconnect the city
    let mut shuffled = candidates.clone();
    shuffled.shuffle(&mut rng);
    let mut uf = UnionFind::new(n);
    let mut tree_edges = std::collections::HashSet::with_capacity(n);
    for &(a, c) in &shuffled {
        if uf.union(a.0, c.0) {
            tree_edges.insert((a, c));
        }
    }

    for &(a, c) in &candidates {
        let keep = tree_edges.contains(&(a, c)) || rng.gen::<f64>() >= cfg.removal_prob;
        if keep {
            let base = pts[a.index()].distance(&pts[c.index()]);
            let w = base * (1.0 + rng.gen::<f64>() * cfg.roughness);
            b.add_edge(a, c, Some(w))?;
        }
    }

    // diagonal shortcuts inside blocks
    if cfg.diagonal_prob > 0.0 {
        for row in 0..ny.saturating_sub(1) {
            for col in 0..nx.saturating_sub(1) {
                if rng.gen::<f64>() < cfg.diagonal_prob {
                    let (a, c) = if rng.gen::<bool>() {
                        (id(col, row), id(col + 1, row + 1))
                    } else {
                        (id(col + 1, row), id(col, row + 1))
                    };
                    let base = pts[a.index()].distance(&pts[c.index()]);
                    let w = base * (1.0 + rng.gen::<f64>() * cfg.roughness);
                    b.add_edge(a, c, Some(w))?;
                }
            }
        }
    }

    let net = b.build()?;
    debug_assert!(net.is_connected());
    Ok(net)
}

/// Configuration of the [`ring_radial`] generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingRadialConfig {
    /// Number of concentric rings (≥ 1).
    pub rings: usize,
    /// Number of radial spokes (≥ 3).
    pub spokes: usize,
    /// Radial distance between consecutive rings, kilometres.
    pub ring_gap_km: f64,
    /// Probability of removing a non-tree segment (connectivity preserved).
    pub removal_prob: f64,
    /// Weight roughness, as in [`GridCityConfig::roughness`].
    pub roughness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RingRadialConfig {
    /// A default ring-radial city.
    pub fn new(rings: usize, spokes: usize) -> Self {
        RingRadialConfig {
            rings,
            spokes,
            ring_gap_km: 0.5,
            removal_prob: 0.08,
            roughness: 0.1,
            seed: 0x0051_0e00,
        }
    }
}

/// Generates a ring-radial city: a centre vertex, `rings` concentric rings
/// of `spokes` vertices each, ring segments between angular neighbours and
/// radial segments between consecutive rings. Always connected;
/// `num_nodes() == rings * spokes + 1`.
pub fn ring_radial(cfg: &RingRadialConfig) -> Result<RoadNetwork, NetworkError> {
    if cfg.rings < 1 || cfg.spokes < 3 {
        return Err(NetworkError::BadGeneratorConfig(
            "ring_radial requires rings >= 1 and spokes >= 3".into(),
        ));
    }
    if cfg.ring_gap_km <= 0.0
        || cfg.ring_gap_km.is_nan()
        || !(0.0..1.0).contains(&cfg.removal_prob)
        || cfg.roughness < 0.0
    {
        return Err(NetworkError::BadGeneratorConfig(
            "ring_gap_km must be positive, removal_prob in [0,1), roughness >= 0".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.rings * cfg.spokes + 1;
    let mut b = NetworkBuilder::with_capacity(n, 2 * n);
    let mut pts = Vec::with_capacity(n);

    let center = b.add_node(Point::ORIGIN);
    pts.push(Point::ORIGIN);
    let id = |ring: usize, spoke: usize| NodeId((1 + ring * cfg.spokes + spoke) as u32);
    for ring in 0..cfg.rings {
        let r = (ring + 1) as f64 * cfg.ring_gap_km;
        for spoke in 0..cfg.spokes {
            let theta = spoke as f64 / cfg.spokes as f64 * std::f64::consts::TAU;
            let p = Point::new(r * theta.cos(), r * theta.sin());
            pts.push(p);
            b.add_node(p);
        }
    }

    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for spoke in 0..cfg.spokes {
        candidates.push((center, id(0, spoke)));
        for ring in 0..cfg.rings {
            let next_spoke = (spoke + 1) % cfg.spokes;
            candidates.push((id(ring, spoke), id(ring, next_spoke)));
            if ring + 1 < cfg.rings {
                candidates.push((id(ring, spoke), id(ring + 1, spoke)));
            }
        }
    }

    let mut shuffled = candidates.clone();
    shuffled.shuffle(&mut rng);
    let mut uf = UnionFind::new(n);
    let mut tree = std::collections::HashSet::with_capacity(n);
    for &(a, c) in &shuffled {
        if uf.union(a.0, c.0) {
            tree.insert((a, c));
        }
    }

    for &(a, c) in &candidates {
        let keep = tree.contains(&(a, c)) || rng.gen::<f64>() >= cfg.removal_prob;
        if keep {
            let base = pts[a.index()].distance(&pts[c.index()]);
            let w = base * (1.0 + rng.gen::<f64>() * cfg.roughness);
            b.add_edge(a, c, Some(w))?;
        }
    }

    let net = b.build()?;
    debug_assert!(net.is_connected());
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_is_exact_lattice() {
        let net = grid_city(&GridCityConfig::tiny(4)).unwrap();
        assert_eq!(net.num_nodes(), 16);
        assert_eq!(net.num_edges(), 2 * 4 * 3); // 24 unit streets
        assert!(net.is_connected());
        // vertex (col, row) = row * 4 + col at position (col, row)
        assert_eq!(net.point(NodeId(0)), Point::new(0.0, 0.0));
        assert_eq!(net.point(NodeId(5)), Point::new(1.0, 1.0));
        assert_eq!(net.point(NodeId(15)), Point::new(3.0, 3.0));
        for e in net.edges() {
            assert!((e.weight - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_city_is_deterministic() {
        let cfg = GridCityConfig::new(20, 15).with_seed(99);
        let a = grid_city(&cfg).unwrap();
        let b = grid_city(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = grid_city(&GridCityConfig::new(20, 15).with_seed(1)).unwrap();
        let b = grid_city(&GridCityConfig::new(20, 15).with_seed(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn grid_city_stays_connected_under_heavy_removal() {
        let mut cfg = GridCityConfig::new(30, 30).with_seed(5);
        cfg.removal_prob = 0.6;
        let net = grid_city(&cfg).unwrap();
        assert!(net.is_connected());
        assert_eq!(net.num_nodes(), 900);
        // a spanning tree needs n-1 edges; removal can't go below that
        assert!(net.num_edges() >= 899);
    }

    #[test]
    fn grid_city_rejects_bad_configs() {
        assert!(grid_city(&GridCityConfig::new(1, 5)).is_err());
        let mut cfg = GridCityConfig::new(5, 5);
        cfg.jitter = 0.9;
        assert!(grid_city(&cfg).is_err());
        let mut cfg = GridCityConfig::new(5, 5);
        cfg.removal_prob = 1.0;
        assert!(grid_city(&cfg).is_err());
        let mut cfg = GridCityConfig::new(5, 5);
        cfg.spacing_km = 0.0;
        assert!(grid_city(&cfg).is_err());
    }

    #[test]
    fn grid_city_weights_respect_roughness_bounds() {
        let cfg = GridCityConfig::new(10, 10).with_seed(3);
        let net = grid_city(&cfg).unwrap();
        for e in net.edges() {
            let straight = net.point(e.a).distance(&net.point(e.b));
            assert!(e.weight >= straight - 1e-12);
            assert!(e.weight <= straight * (1.0 + cfg.roughness) + 1e-12);
        }
    }

    #[test]
    fn ring_radial_shape() {
        let net = ring_radial(&RingRadialConfig::new(3, 8)).unwrap();
        assert_eq!(net.num_nodes(), 25);
        assert!(net.is_connected());
        // the centre touches at least one spoke
        assert!(net.degree(NodeId(0)) >= 1);
    }

    #[test]
    fn ring_radial_is_deterministic_and_validated() {
        let cfg = RingRadialConfig::new(2, 6);
        assert_eq!(ring_radial(&cfg).unwrap(), ring_radial(&cfg).unwrap());
        assert!(ring_radial(&RingRadialConfig::new(0, 6)).is_err());
        assert!(ring_radial(&RingRadialConfig::new(2, 2)).is_err());
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }
}
