//! # uots-network
//!
//! Spatial (road) network substrate for the UOTS reproduction: graph model,
//! shortest paths, incremental network expansion, synthetic generators and
//! I/O.
//!
//! The UOTS paper family models a spatial network as a connected, undirected,
//! edge-weighted graph whose vertices carry planar geometry; trajectory
//! sample points are map-matched to vertices. Every spatial computation in
//! the workspace reduces to primitives from this crate:
//!
//! * [`RoadNetwork`] — immutable CSR graph built via [`NetworkBuilder`];
//! * [`dijkstra`] — exact shortest-path trees / point-to-point / many-target
//!   distances (brute-force oracle, baselines, generators);
//! * [`expansion::NetworkExpansion`] — *resumable* Dijkstra, the primitive
//!   behind the paper's concurrent multi-source expansion search;
//! * [`astar::AStar`] — fast point-to-point routing for trip generation;
//! * [`matrix::DistanceMatrix`] — Floyd–Warshall all-pairs oracle;
//! * [`landmarks::Landmarks`] — optional ALT lower bounds (extension);
//! * [`generators`] — deterministic synthetic city networks standing in for
//!   the paper's Beijing road network;
//! * [`io`] — edge-list text format plus serde support.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod astar;
pub mod dijkstra;
mod error;
pub mod expansion;
pub mod generators;
mod geometry;
mod graph;
mod heap;
pub mod io;
pub mod landmarks;
pub mod matrix;

pub use error::NetworkError;
pub use geometry::{BBox, Point};
pub use graph::{Edge, EdgeId, NetworkBuilder, NodeId, RoadNetwork};
pub use heap::TotalF64;
