//! Quickstart: build a small city, ask for a trip, print the answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uots::prelude::*;

fn main() {
    // A 30×30 synthetic city with 200 tagged taxi trips.
    let ds = Dataset::build(&DatasetConfig::small(200, 42)).expect("dataset builds");
    println!("dataset: {}\n{}\n", ds.name, ds.stats());

    let db = uots::db(&ds);

    // The traveler wants to pass near three places and likes two tags.
    let spec = &workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 1,
            locations_per_query: 3,
            keywords_per_query: 2,
            seed: 7,
            ..Default::default()
        },
    )[0];
    let query = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        vec![],
        QueryOptions {
            k: 3,
            ..Default::default()
        },
    )
    .expect("valid query");

    println!(
        "query: places {:?}, keywords {:?}",
        query.locations(),
        query
            .keywords()
            .iter()
            .map(|k| ds.vocab.word(k).unwrap_or("?").to_string())
            .collect::<Vec<_>>()
    );

    let result = Expansion::default().run(&db, &query).expect("query runs");
    println!("\ntop {} recommended trips:", result.matches.len());
    for (rank, m) in result.matches.iter().enumerate() {
        let traj = ds.store.get(m.id);
        println!(
            "  #{rank}: {} — similarity {:.4} (spatial {:.4}, textual {:.4}), \
             {} samples, tags {:?}",
            m.id,
            m.similarity,
            m.spatial,
            m.textual,
            traj.len(),
            traj.keywords()
                .iter()
                .map(|k| ds.vocab.word(k).unwrap_or("?").to_string())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nsearch effort: visited {} of {} trajectories, settled {} vertices, {:?}",
        result.metrics.visited_trajectories,
        ds.store.len(),
        result.metrics.settled_vertices,
        result.metrics.runtime
    );
}
