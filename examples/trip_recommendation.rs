//! Trip recommendation scenario: the paper's motivating application.
//!
//! A tourist supplies the places they intend to visit and keywords
//! describing the kind of trip they want. This example runs the same query
//! under several preference parameters λ and shows how the recommendation
//! shifts between "spatially closest trip" and "textually best-matching
//! trip" — the trade-off the UOTS linear combination controls.
//!
//! ```text
//! cargo run --release --example trip_recommendation
//! ```

use uots::prelude::*;

fn main() {
    let ds = Dataset::build(&DatasetConfig::small(400, 2026)).expect("dataset builds");
    let db = uots::db(&ds);
    println!("dataset: {}\n{}\n", ds.name, ds.stats());

    // Intended places: three vertices in the city centre.
    let center = ds.network.bbox().center();
    let places = vec![
        ds.snap(&Point::new(center.x - 1.0, center.y)),
        ds.snap(&Point::new(center.x + 1.0, center.y + 0.5)),
        ds.snap(&Point::new(center.x, center.y - 1.0)),
    ];
    // Preference: the three most popular tags of category 0.
    let keywords = {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(5);
        ds.tags.sample_tags(0, 3, &mut rng)
    };
    println!(
        "intended places: {places:?}\npreference: {:?}\n",
        keywords
            .iter()
            .map(|k| ds.vocab.word(k).unwrap_or("?").to_string())
            .collect::<Vec<_>>()
    );

    println!(
        "{:<6} {:>10} {:>9} {:>9} {:>9}  tags of the winner",
        "λ", "winner", "sim", "spatial", "textual"
    );
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let query = UotsQuery::with_options(
            places.clone(),
            keywords.clone(),
            vec![],
            QueryOptions {
                weights: Weights::lambda(lambda).expect("valid lambda"),
                k: 1,
                ..Default::default()
            },
        )
        .expect("valid query");
        let result = Expansion::default().run(&db, &query).expect("query runs");
        let best = result.best().expect("non-empty dataset");
        let tags: Vec<String> = ds
            .store
            .get(best.id)
            .keywords()
            .iter()
            .map(|k| ds.vocab.word(k).unwrap_or("?").to_string())
            .collect();
        println!(
            "{lambda:<6} {:>10} {:>9.4} {:>9.4} {:>9.4}  {tags:?}",
            best.id.to_string(),
            best.similarity,
            best.spatial,
            best.textual
        );
    }

    // Order-aware re-ranking (extension): prefer trips that visit the
    // intended places in the given order.
    let query = UotsQuery::with_options(
        places,
        keywords,
        vec![],
        QueryOptions {
            k: 5,
            ..Default::default()
        },
    )
    .expect("valid query");
    let mut result = Expansion::default().run(&db, &query).expect("query runs");
    println!("\ntop-5 before order-aware re-ranking: {:?}", result.ids());
    uots::order::rerank_by_order(&db, &query, &mut result, 0.3);
    println!("top-5 after  order-aware re-ranking: {:?}", result.ids());
}
