//! Data cleaning with the similarity join — the paper family's
//! near-duplicate-detection application.
//!
//! A crowd-sourced trajectory database accumulates near-identical copies of
//! popular trips. The pipeline here:
//!
//! 1. plant exact/near duplicates into a dataset,
//! 2. find them with a high-θ similarity self-join,
//! 3. cluster the pairs (union-find) and keep one representative per
//!    cluster,
//! 4. retire the rest through the updatable [`DynamicVertexIndex`], freeze,
//!    and keep answering UOTS queries over the cleaned database.
//!
//! ```text
//! cargo run --release --example data_cleaning
//! ```

use uots::index::DynamicVertexIndex;
use uots::join::{ts_join, JoinConfig};
use uots::prelude::*;

fn main() {
    let ds = Dataset::build(&DatasetConfig::small(250, 64)).expect("dataset builds");

    // 1. pollute the store with near-duplicates of the first 30 trips
    let mut store = ds.store.clone();
    for i in 0..30u32 {
        let original = ds.store.get(TrajectoryId(i)).clone();
        store.push(original); // exact copy
    }
    println!(
        "polluted store: {} trajectories ({} planted duplicates)",
        store.len(),
        30
    );

    // 2. near-duplicate join
    let vidx = store.build_vertex_index(ds.network.num_nodes());
    let tidx = store.build_timestamp_index();
    let cfg = JoinConfig {
        theta: 0.98,
        lambda: 0.5,
        ..Default::default()
    };
    let result = ts_join(&ds.network, &store, &vidx, &tidx, &cfg, 2).expect("join runs");
    println!(
        "join found {} near-duplicate pairs in {:?}",
        result.pairs.len(),
        result.runtime
    );

    // 3. union-find clustering; keep the smallest id of each cluster
    let mut parent: Vec<u32> = (0..store.len() as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for p in &result.pairs {
        let (ra, rb) = (find(&mut parent, p.a.0), find(&mut parent, p.b.0));
        if ra != rb {
            // keep the smaller id as the representative
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[drop as usize] = keep;
        }
    }
    let retired: Vec<TrajectoryId> = store
        .ids()
        .filter(|id| find(&mut parent, id.0) != id.0)
        .collect();
    println!("retiring {} redundant trajectories", retired.len());

    // 4. retire through the dynamic index, freeze, keep serving
    let mut dynamic = DynamicVertexIndex::new(ds.network.num_nodes());
    for (id, t) in store.iter() {
        for v in t.nodes() {
            dynamic.insert(v, id);
        }
    }
    let retired_set: std::collections::HashSet<TrajectoryId> = retired.iter().copied().collect();
    for &id in &retired {
        for v in store.get(id).nodes() {
            dynamic.remove(v, id);
        }
    }
    let cleaned_vidx = dynamic.freeze();

    let db =
        Database::new(&ds.network, &store, &cleaned_vidx).with_keyword_index(&ds.keyword_index);
    let spec = &workload::generate(&ds, &workload::WorkloadConfig::default())[0];
    let q = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        vec![],
        QueryOptions {
            k: 5,
            ..Default::default()
        },
    )
    .expect("valid query");
    let r = Expansion::default().run(&db, &q).expect("query runs");
    println!("\ntop-5 over the cleaned database: {:?}", r.ids());
    assert!(
        r.ids().iter().all(|id| !retired_set.contains(id)),
        "retired trajectories must not be recommended"
    );
    println!("no retired trajectory appears in the results ✓");
}
