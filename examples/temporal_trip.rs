//! Temporal extension: recommend trips that also happen at the right time.
//!
//! A commuter looking for a rideshare-style match cares *when* a trip runs,
//! not only where. This example activates the temporal channel (a
//! PTM-style third term in the linear combination) and contrasts the
//! answers with the purely spatial-textual query.
//!
//! ```text
//! cargo run --release --example temporal_trip
//! ```

use uots::prelude::*;

fn main() {
    let ds = Dataset::build(&DatasetConfig::small(500, 31)).expect("dataset builds");
    let tidx = ds.store.build_timestamp_index();
    let db = uots::db(&ds).with_timestamp_index(&tidx);

    let spec = &workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 1,
            locations_per_query: 3,
            keywords_per_query: 2,
            seed: 3,
            ..Default::default()
        },
    )[0];

    // Morning commute at 08:30.
    let preferred = vec![8.5 * 3_600.0];

    let spatial_textual = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        vec![],
        QueryOptions {
            weights: Weights::lambda(0.5).expect("valid"),
            k: 3,
            ..Default::default()
        },
    )
    .expect("valid query");

    let with_time = UotsQuery::with_options(
        spec.locations.clone(),
        spec.keywords.clone(),
        preferred.clone(),
        QueryOptions {
            weights: Weights::new(0.4, 0.2, 0.4).expect("valid"),
            k: 3,
            decay_s: 1_800.0, // half-hour tolerance
            ..Default::default()
        },
    )
    .expect("valid query");

    let algo = Expansion::default();
    let a = algo.run(&db, &spatial_textual).expect("query runs");
    let b = algo.run(&db, &with_time).expect("query runs");

    let describe = |label: &str, r: &QueryResult| {
        println!("{label}:");
        for m in &r.matches {
            let (t0, t1) = ds.store.get(m.id).time_range();
            println!(
                "  {} sim {:.4} — departs {:02}:{:02}, arrives {:02}:{:02} (temporal {:.3})",
                m.id,
                m.similarity,
                (t0 / 3600.0) as u32,
                ((t0 % 3600.0) / 60.0) as u32,
                (t1 / 3600.0) as u32,
                ((t1 % 3600.0) / 60.0) as u32,
                m.temporal
            );
        }
    };
    describe("without temporal channel", &a);
    println!();
    describe("with temporal channel (prefer ~08:30)", &b);

    let best = b.best().expect("non-empty");
    let (t0, _) = ds.store.get(best.id).time_range();
    println!(
        "\nbest temporal match departs {:.1} h — preferred 8.5 h",
        t0 / 3600.0
    );
}
