//! Parallel batch processing: many travelers' queries at once.
//!
//! UOTS searches are independent, so a query batch parallelizes trivially —
//! the property the paper exploits. This example measures batch throughput
//! at several thread counts on one dataset.
//!
//! ```text
//! cargo run --release --example parallel_throughput
//! ```

use std::time::Instant;
use uots::parallel::run_batch_aggregated;
use uots::prelude::*;

fn main() {
    let ds = Dataset::build(&DatasetConfig::small(600, 1234)).expect("dataset builds");
    let db = uots::db(&ds);
    let specs = workload::generate(
        &ds,
        &workload::WorkloadConfig {
            num_queries: 64,
            ..Default::default()
        },
    );
    let queries: Vec<UotsQuery> = specs
        .into_iter()
        .map(|s| UotsQuery::new(s.locations, s.keywords).expect("valid query"))
        .collect();

    println!(
        "dataset: {} ({} trajectories); batch of {} queries\n",
        ds.name,
        ds.store.len(),
        queries.len()
    );
    println!(
        "{:>8} {:>12} {:>14} {:>18}",
        "threads", "wall time", "queries/s", "visited/query"
    );

    let algo = Expansion::default();
    let mut reference: Option<Vec<Vec<TrajectoryId>>> = None;
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1usize, 2, 4, hw.max(4) * 2] {
        let start = Instant::now();
        let (results, agg) =
            run_batch_aggregated(&db, &algo, &queries, threads).expect("batch runs");
        let wall = start.elapsed();
        let ids: Vec<Vec<TrajectoryId>> = results.iter().map(|r| r.ids()).collect();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(r, &ids, "thread count must not change answers"),
        }
        println!(
            "{threads:>8} {:>12?} {:>14.1} {:>18.1}",
            wall,
            queries.len() as f64 / wall.as_secs_f64(),
            agg.visited_per_query()
        );
    }
    println!("\n(available hardware parallelism: {hw} threads)");
}
