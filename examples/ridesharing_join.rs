//! Ridesharing partner matching via the trajectory similarity self-join
//! (the `uots-join` extension crate).
//!
//! Commuters record their daily trips; pairs whose trips are close in both
//! space and departure time are rideshare candidates. A threshold self-join
//! with the symmetric spatiotemporal similarity finds all such pairs.
//!
//! ```text
//! cargo run --release --example ridesharing_join
//! ```

use uots::join::{ts_join, JoinConfig};
use uots::prelude::*;

fn main() {
    let ds = Dataset::build(&DatasetConfig::small(400, 88)).expect("dataset builds");
    let tidx = ds.store.build_timestamp_index();
    println!("dataset: {} ({} commuter trips)\n", ds.name, ds.store.len());

    for theta in [0.9, 0.8, 0.7] {
        let cfg = JoinConfig {
            theta,
            lambda: 0.5, // space and schedule matter equally
            ..Default::default()
        };
        let result =
            ts_join(&ds.network, &ds.store, &ds.vertex_index, &tidx, &cfg, 2).expect("join runs");
        println!(
            "θ = {theta}: {} matched pairs in {:?} (visited {} trajectory states, \
             {:.1}% candidate ratio)",
            result.pairs.len(),
            result.runtime,
            result.visited_trajectories,
            100.0 * result.candidates as f64 / (ds.store.len() * ds.store.len()) as f64
        );
        for p in result.pairs.iter().take(3) {
            let (ta, tb) = (ds.store.get(p.a), ds.store.get(p.b));
            let dep = |t: &uots::Trajectory| {
                let (t0, _) = t.time_range();
                format!(
                    "{:02}:{:02}",
                    (t0 / 3600.0) as u32,
                    ((t0 % 3600.0) / 60.0) as u32
                )
            };
            println!(
                "    {} ↔ {}  sim {:.3}  (departures {} / {})",
                p.a,
                p.b,
                p.similarity,
                dep(ta),
                dep(tb)
            );
        }
    }
    println!("\nlower θ admits more, looser matches — pick per product needs");
}
