//! End-to-end ingestion pipeline: raw GPS fixes → map matching →
//! trajectory store → UOTS query.
//!
//! The paper assumes map-matched input; this example shows the full path
//! from simulated raw GPS (noisy fixes along ground-truth routes) to query
//! answers, exercising `uots_trajectory::mapmatch` and the grid index.
//!
//! ```text
//! cargo run --release --example map_matching_pipeline
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uots::network::astar::AStar;
use uots::network::generators::{grid_city, GridCityConfig};
use uots::prelude::*;
use uots::trajectory::mapmatch::{map_match, simulate_gps};
use uots::trajectory::{TagModelConfig, TagSampler, TrajectoryStore};

fn main() {
    let net = grid_city(&GridCityConfig::new(40, 40).with_seed(9)).expect("network builds");
    let grid = uots::index::GridIndex::build(net.points(), 8);
    let mut rng = StdRng::seed_from_u64(77);
    let (tags, vocab) = TagSampler::synthetic(&TagModelConfig::default(), &mut rng);

    // 1. Simulate 150 vehicles: ground-truth route, noisy GPS, map matching.
    let mut store = TrajectoryStore::new();
    let mut astar = AStar::new(&net);
    let mut raw_fix_count = 0usize;
    while store.len() < 150 {
        let a = NodeId(rng.gen_range(0..net.num_nodes()) as u32);
        let b = NodeId(rng.gen_range(0..net.num_nodes()) as u32);
        if a == b {
            continue;
        }
        let Some(route) = astar.route(a, b) else {
            continue;
        };
        if route.distance < 2.0 {
            continue;
        }
        let start = rng.gen_range(6.0..20.0) * 3_600.0;
        let fixes = simulate_gps(
            &net,
            &route.path,
            start,
            rng.gen_range(20.0..45.0), // km/h
            15.0,                      // one fix per 15 s
            0.04,                      // 40 m GPS noise
            &mut rng,
        );
        raw_fix_count += fixes.len();
        let category = tags.sample_category(&mut rng);
        let keywords = tags.sample_tags(category, 4, &mut rng);
        match map_match(&fixes, &grid, keywords) {
            Ok(traj) => {
                store.push(traj);
            }
            Err(e) => eprintln!("map matching rejected a trace: {e}"),
        }
    }
    println!(
        "ingested {} raw fixes into {} map-matched trajectories",
        raw_fix_count,
        store.len()
    );
    println!("{}\n", uots::trajectory::DatasetStats::compute(&store));

    // 2. Index and query.
    let vidx = store.build_vertex_index(net.num_nodes());
    let kidx = store.build_keyword_index(vocab.len());
    let db = Database::new(&net, &store, &vidx).with_keyword_index(&kidx);

    let places = vec![NodeId(0), NodeId(820), NodeId(1599)];
    let keywords = tags.sample_tags(0, 3, &mut rng);
    let query = UotsQuery::with_options(
        places,
        keywords,
        vec![],
        QueryOptions {
            k: 3,
            ..Default::default()
        },
    )
    .expect("valid query");

    let result = Expansion::default().run(&db, &query).expect("query runs");
    println!("top-3 trips over map-matched data:");
    for m in &result.matches {
        println!(
            "  {} sim {:.4} (spatial {:.4}, textual {:.4})",
            m.id, m.similarity, m.spatial, m.textual
        );
    }
    println!(
        "visited {} / {} trajectories",
        result.metrics.visited_trajectories,
        store.len()
    );
}
